//! Flow-size distributions for the datacenter workloads of Figure 2.
//!
//! The paper plots six published workloads spanning 2008–2019. The
//! original traces are not public; each distribution here is an empirical
//! CDF reconstructed from the shapes reported in the cited papers
//! (Meta key-value: Atikoglu et al., SIGMETRICS'12; Google RPC: Sivaram
//! memo '08; Meta Hadoop: Roy et al., SIGCOMM'15; Alibaba storage: Li et
//! al., SIGCOMM'19 (HPCC); DCTCP web search: Alizadeh et al., SIGCOMM'10).
//! The anchor points the paper itself calls out are preserved exactly:
//! 143 B is the most frequent size in the Google all-RPC workload, 24,387 B
//! the most frequent in DCTCP web search, and 2 MB the maximum in Alibaba
//! storage — and the headline property that the majority of flows fit in a
//! single 1,500 B packet holds for the RPC/key-value workloads.

use lg_sim::Rng;
use serde::{Deserialize, Serialize};

/// A flow/message size distribution.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum FlowSizeDist {
    /// Every flow has the same size (the paper's FCT experiments use
    /// fixed 143 B / 24,387 B / 2 MB flows).
    Fixed(u32),
    /// Piecewise log-linear empirical CDF: sorted `(size, cum_prob)`
    /// points, `cum_prob` ending at 1.0.
    Empirical {
        /// Display name.
        name: &'static str,
        /// Sorted (size_bytes, cumulative_probability) anchor points.
        points: Vec<(u32, f64)>,
    },
}

impl FlowSizeDist {
    /// Draw one flow size.
    pub fn sample(&self, rng: &mut Rng) -> u32 {
        match self {
            FlowSizeDist::Fixed(s) => *s,
            FlowSizeDist::Empirical { points, .. } => {
                let u = rng.f64();
                // find the bracketing anchor points
                let mut prev = (1u32, 0.0f64);
                for &(size, p) in points {
                    if u <= p {
                        // log-linear interpolation between prev and this
                        let (s0, p0) = prev;
                        let frac = if p - p0 > 1e-12 {
                            (u - p0) / (p - p0)
                        } else {
                            1.0
                        };
                        let ls0 = (s0.max(1) as f64).ln();
                        let ls1 = (size as f64).ln();
                        return (ls0 + frac * (ls1 - ls0)).exp().round().max(1.0) as u32;
                    }
                    prev = (size, p);
                }
                points.last().expect("non-empty").0
            }
        }
    }

    /// The distribution's CDF evaluated at `size` (for Fig 2 plotting).
    pub fn cdf(&self, size: u32) -> f64 {
        match self {
            FlowSizeDist::Fixed(s) => {
                if size >= *s {
                    1.0
                } else {
                    0.0
                }
            }
            FlowSizeDist::Empirical { points, .. } => {
                let mut prev = (1u32, 0.0f64);
                for &(s, p) in points {
                    if size < s {
                        let (s0, p0) = prev;
                        if size <= s0 {
                            return p0;
                        }
                        let frac = ((size as f64).ln() - (s0.max(1) as f64).ln())
                            / ((s as f64).ln() - (s0.max(1) as f64).ln());
                        return p0 + frac * (p - p0);
                    }
                    prev = (s, p);
                }
                1.0
            }
        }
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            FlowSizeDist::Fixed(_) => "fixed",
            FlowSizeDist::Empirical { name, .. } => name,
        }
    }

    /// Fraction of flows that fit in a single 1,500-byte packet.
    pub fn single_packet_fraction(&self) -> f64 {
        self.cdf(1500)
    }

    // ----- the six Figure 2 workloads -----

    /// Meta (Facebook) key-value store messages (2012): dominated by tiny
    /// get/set operations of tens to hundreds of bytes.
    pub fn meta_key_value() -> FlowSizeDist {
        FlowSizeDist::Empirical {
            name: "Meta key-value",
            points: vec![
                (2, 0.05),
                (15, 0.30),
                (50, 0.60),
                (150, 0.80),
                (500, 0.95),
                (1_024, 0.99),
                (10_000, 1.0),
            ],
        }
    }

    /// Google search RPC messages (2008): small requests, kilobyte-scale
    /// responses.
    pub fn google_search_rpc() -> FlowSizeDist {
        FlowSizeDist::Empirical {
            name: "Google search RPC",
            points: vec![
                (64, 0.10),
                (143, 0.35),
                (512, 0.60),
                (2_048, 0.85),
                (8_192, 0.96),
                (65_536, 1.0),
            ],
        }
    }

    /// Google all-RPC traffic (2008): 143 B is the most frequent size
    /// (used by the paper's single-packet FCT experiment, §4.3).
    pub fn google_all_rpc() -> FlowSizeDist {
        FlowSizeDist::Empirical {
            name: "Google all RPC",
            points: vec![
                (64, 0.12),
                (143, 0.55),
                (366, 0.75),
                (1_024, 0.90),
                (4_096, 0.97),
                (100_000, 1.0),
            ],
        }
    }

    /// Meta (Facebook) Hadoop traffic (2015): kilobyte-to-megabyte shuffle
    /// transfers.
    pub fn meta_hadoop() -> FlowSizeDist {
        FlowSizeDist::Empirical {
            name: "Meta Hadoop",
            points: vec![
                (256, 0.05),
                (1_024, 0.20),
                (10_240, 0.50),
                (102_400, 0.80),
                (1_048_576, 0.95),
                (10_485_760, 1.0),
            ],
        }
    }

    /// Alibaba storage traffic (2019): capped at 2 MB — the maximum the
    /// paper uses for its long-flow FCT experiment (§4.3).
    pub fn alibaba_storage() -> FlowSizeDist {
        FlowSizeDist::Empirical {
            name: "Alibaba storage",
            points: vec![
                (512, 0.10),
                (4_096, 0.35),
                (32_768, 0.60),
                (131_072, 0.80),
                (524_288, 0.92),
                (2_097_152, 1.0),
            ],
        }
    }

    /// DCTCP web search workload (2010): 24,387 B is the most frequent
    /// flow size (used by the paper's multi-packet FCT experiment, §4.3).
    pub fn dctcp_web_search() -> FlowSizeDist {
        FlowSizeDist::Empirical {
            name: "DCTCP web search",
            points: vec![
                (5_000, 0.0),
                (6_000, 0.15),
                (13_000, 0.35),
                (24_387, 0.62),
                (102_400, 0.80),
                (1_048_576, 0.95),
                (31_457_280, 1.0),
            ],
        }
    }

    /// All six Figure 2 workloads.
    pub fn figure2() -> Vec<FlowSizeDist> {
        vec![
            FlowSizeDist::meta_key_value(),
            FlowSizeDist::google_search_rpc(),
            FlowSizeDist::google_all_rpc(),
            FlowSizeDist::meta_hadoop(),
            FlowSizeDist::alibaba_storage(),
            FlowSizeDist::dctcp_web_search(),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_always_same() {
        let d = FlowSizeDist::Fixed(143);
        let mut rng = Rng::new(1);
        assert!((0..100).all(|_| d.sample(&mut rng) == 143));
        assert_eq!(d.cdf(142), 0.0);
        assert_eq!(d.cdf(143), 1.0);
    }

    #[test]
    fn samples_match_cdf_anchors() {
        let d = FlowSizeDist::google_all_rpc();
        let mut rng = Rng::new(2);
        let n = 200_000;
        let below_143 = (0..n).filter(|_| d.sample(&mut rng) <= 143).count();
        let frac = below_143 as f64 / n as f64;
        assert!((frac - 0.55).abs() < 0.01, "P[size<=143] = {frac}");
    }

    #[test]
    fn cdf_is_monotonic() {
        for d in FlowSizeDist::figure2() {
            let mut last = 0.0;
            for exp in 0..25 {
                let size = 1u32 << exp;
                let c = d.cdf(size);
                assert!(
                    c >= last - 1e-12,
                    "{}: cdf({size}) = {c} < {last}",
                    d.name()
                );
                last = c;
            }
            assert!((d.cdf(u32::MAX) - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn rpc_workloads_are_mostly_single_packet() {
        // the paper's core premise (§1): most flows fit in one packet
        assert!(FlowSizeDist::meta_key_value().single_packet_fraction() > 0.9);
        assert!(FlowSizeDist::google_all_rpc().single_packet_fraction() > 0.5);
        // and the bulk workloads are not
        assert!(FlowSizeDist::meta_hadoop().single_packet_fraction() < 0.3);
        assert!(FlowSizeDist::dctcp_web_search().single_packet_fraction() < 0.1);
    }

    #[test]
    fn alibaba_storage_max_is_2mb() {
        let d = FlowSizeDist::alibaba_storage();
        let mut rng = Rng::new(3);
        assert!((0..50_000).all(|_| d.sample(&mut rng) <= 2_097_152));
    }

    #[test]
    fn samples_within_support() {
        let mut rng = Rng::new(4);
        for d in FlowSizeDist::figure2() {
            for _ in 0..10_000 {
                let s = d.sample(&mut rng);
                assert!(s >= 1, "{}: sample {s}", d.name());
            }
        }
    }
}
