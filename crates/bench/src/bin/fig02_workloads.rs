//! Figure 2: flow-size CDFs of six datacenter workloads (2008–2019),
//! with the 1024 B / 1500 B single-packet markers.
//!
//! Usage: `cargo run --release -p lg-bench --bin fig02_workloads`

use lg_bench::banner;
use lg_workload::FlowSizeDist;

fn main() {
    let _obs = lg_bench::obs::session("fig02_workloads");
    banner(
        "Figure 2",
        "flow size distributions of datacenter workloads",
    );
    let dists = FlowSizeDist::figure2();
    let sizes: Vec<u32> = (0..=23).map(|e| 1u32 << e).collect();
    print!("{:<10}", "bytes");
    for d in &dists {
        print!("{:>20}", d.name());
    }
    println!();
    for &s in &sizes {
        print!("{s:<10}");
        for d in &dists {
            print!("{:>20.3}", d.cdf(s));
        }
        println!();
    }
    println!();
    println!("single-packet (<=1500B) fraction per workload:");
    for d in &dists {
        println!(
            "  {:<22} {:>6.1}%",
            d.name(),
            d.single_packet_fraction() * 100.0
        );
    }
    println!();
    println!("paper: most RPC/key-value flows fit in a single packet;");
    println!("       143B is the Google all-RPC mode, 24,387B the web-search mode.");
}
