//! `lg-bench` — regenerators for every table and figure in the paper's
//! evaluation, one binary each (`cargo run --release -p lg-bench --bin
//! figXX_...`), plus criterion micro-benchmarks of the core data
//! structures.
//!
//! Binaries print the same rows/series the paper reports; absolute
//! numbers come from the simulated substrate, so `EXPERIMENTS.md`
//! compares *shapes* (who wins, by what factor, where crossovers fall)
//! against the paper.

pub mod obs;
pub mod pktroll;
pub mod sweep;

use std::env;

/// Parse `--key value` from an explicit argument list.
///
/// Returns `Ok(None)` when `key` is absent, and `Err` with a
/// human-readable message when the key is present but the value is
/// missing or fails to parse — silently falling back to a default on a
/// typo would run the wrong experiment.
pub fn try_arg<T: std::str::FromStr>(args: &[String], key: &str) -> Result<Option<T>, String>
where
    T::Err: std::fmt::Display,
{
    for i in 0..args.len() {
        if args[i] == key {
            let Some(v) = args.get(i + 1) else {
                return Err(format!("missing value after {key}"));
            };
            return match v.parse::<T>() {
                Ok(parsed) => Ok(Some(parsed)),
                Err(e) => Err(format!("invalid value for {key}: {v:?} ({e})")),
            };
        }
    }
    Ok(None)
}

/// Parse `--key value` style arguments with a default.
///
/// A present-but-unparsable value is reported on stderr and exits with
/// status 2 rather than being silently replaced by the default.
pub fn arg<T: std::str::FromStr>(key: &str, default: T) -> T
where
    T::Err: std::fmt::Display,
{
    let args: Vec<String> = env::args().collect();
    match try_arg(&args, key) {
        Ok(Some(parsed)) => parsed,
        Ok(None) => default,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
}

/// Whether a bare flag is present.
pub fn flag(key: &str) -> bool {
    env::args().any(|a| a == key)
}

/// Print a standard experiment banner.
pub fn banner(id: &str, what: &str) {
    println!("==============================================================");
    println!("{id}: {what}");
    println!("==============================================================");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_default_used_when_missing() {
        assert_eq!(arg("--definitely-not-passed", 42u32), 42);
        assert!(!flag("--definitely-not-passed"));
    }

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn try_arg_absent_is_none() {
        let args = argv(&["bin", "--other", "3"]);
        assert_eq!(try_arg::<u32>(&args, "--threads"), Ok(None));
    }

    #[test]
    fn try_arg_parses_present_value() {
        let args = argv(&["bin", "--threads", "8"]);
        assert_eq!(try_arg::<u32>(&args, "--threads"), Ok(Some(8)));
    }

    #[test]
    fn try_arg_reports_bad_value() {
        let args = argv(&["bin", "--threads", "lots"]);
        let err = try_arg::<u32>(&args, "--threads").unwrap_err();
        assert!(err.contains("--threads") && err.contains("lots"), "{err}");
    }

    #[test]
    fn try_arg_reports_missing_value() {
        let args = argv(&["bin", "--threads"]);
        let err = try_arg::<u32>(&args, "--threads").unwrap_err();
        assert!(err.contains("missing value"), "{err}");
    }
}
