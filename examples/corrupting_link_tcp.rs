//! The Figure 9 story: a DCTCP flow crosses a link that starts corrupting
//! packets mid-run; LinkGuardian is activated later and throughput
//! returns to the effective link speed.
//!
//! Run: `cargo run --release --example corrupting_link_tcp`

use lg_link::{LinkSpeed, LossModel};
use lg_sim::{Duration, Time};
use lg_testbed::{time_series, TimeSeriesScenario};
use lg_transport::CcVariant;

fn main() {
    let scenario = TimeSeriesScenario {
        speed: LinkSpeed::G25,
        variant: CcVariant::Dctcp,
        loss: LossModel::Iid { rate: 1e-3 },
        corruption_at: Time::from_ms(10),
        lg_at: Time::from_ms(30),
        end: Time::from_ms(50),
        disable_backpressure: false,
        nb_mode: false,
        sample_interval: Duration::from_ms(1),
        seed: 1,
    };
    println!("single DCTCP flow on a 25G link");
    println!("t=10ms: the link starts corrupting (1e-3)   t=30ms: LinkGuardian activates\n");
    let r = time_series(&scenario);
    println!(
        "{:>7} {:>12} {:>12} {:>10}",
        "t(ms)", "rate(Gbps)", "qdepth(KB)", "e2e retx"
    );
    for (i, &(t, gbps)) in r.goodput.points().iter().enumerate() {
        let q = r.qdepth.points().get(i).map(|p| p.1).unwrap_or(0.0) / 1024.0;
        let e = r.e2e_retx.points().get(i).map(|p| p.1).unwrap_or(0.0);
        let phase = match t.as_secs_f64() * 1e3 {
            x if x <= 10.0 => "healthy",
            x if x <= 30.0 => "corrupting",
            _ => "LinkGuardian",
        };
        println!(
            "{:>7.0} {:>12.2} {:>12.1} {:>10.0}   {phase}",
            t.as_secs_f64() * 1e3,
            gbps,
            q,
            e
        );
    }
    println!("\nonce LinkGuardian runs, end-to-end retransmissions stop and the");
    println!("throughput returns to the (slightly reduced) effective link speed,");
    println!("with the switch queue settling at the DCTCP ECN marking knee.");
}
