//! The Facebook datacenter fabric topology (Andreyev 2014, paper Fig 4).
//!
//! Each pod has 48 top-of-rack (ToR) switches connected to 4 fabric
//! switches; each fabric switch has 48 uplinks into its spine plane. A
//! ToR therefore has 4 × 48 = 192 valley-free paths to the spine layer.
//! With 260 pods the network has 260 × (192 + 192) = 99,840 switch-to-
//! switch optical links — the "about 100K links" of §4.8. All links are
//! 100 G with 1:1 oversubscription.

use serde::{Deserialize, Serialize};

/// ToRs per pod.
pub const TORS_PER_POD: usize = 48;
/// Fabric switches per pod.
pub const FABRICS_PER_POD: usize = 4;
/// Spine uplinks per fabric switch.
pub const UPLINKS_PER_FABRIC: usize = 48;
/// Paths from each ToR to the spine layer.
pub const PATHS_PER_TOR: usize = FABRICS_PER_POD * UPLINKS_PER_FABRIC; // 192
/// Links per pod (ToR↔fabric + fabric↔spine).
pub const LINKS_PER_POD: usize =
    TORS_PER_POD * FABRICS_PER_POD + FABRICS_PER_POD * UPLINKS_PER_FABRIC;

/// Identifier of a link in the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct LinkId(pub u32);

/// Where a link sits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkKind {
    /// ToR `tor` ↔ fabric switch `fabric` within a pod.
    TorFabric {
        /// ToR index within the pod (0..48).
        tor: u8,
        /// Fabric switch index (0..4).
        fabric: u8,
    },
    /// Fabric switch `fabric` ↔ spine switch `spine` of its plane.
    FabricSpine {
        /// Fabric switch index (0..4).
        fabric: u8,
        /// Spine switch index within the plane (0..48).
        spine: u8,
    },
}

/// A link's operational state in the maintenance simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkState {
    /// Healthy and carrying traffic.
    Up,
    /// Corrupting at the given loss rate, still carrying traffic.
    Corrupting {
        /// Frame loss rate.
        loss_rate: f64,
        /// True when LinkGuardian is masking the corruption.
        lg_active: bool,
    },
    /// Disabled and awaiting repair.
    Disabled,
}

/// One link.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Link {
    /// Owning pod.
    pub pod: u32,
    /// Position within the pod.
    pub kind: LinkKind,
    /// Current state.
    pub state: LinkState,
}

/// The whole fabric.
#[derive(Debug, Clone)]
pub struct Fabric {
    /// Number of pods.
    pub pods: u32,
    links: Vec<Link>,
}

impl Fabric {
    /// Build a fabric with `pods` pods.
    pub fn new(pods: u32) -> Fabric {
        let mut links = Vec::with_capacity(pods as usize * LINKS_PER_POD);
        for pod in 0..pods {
            for tor in 0..TORS_PER_POD as u8 {
                for fabric in 0..FABRICS_PER_POD as u8 {
                    links.push(Link {
                        pod,
                        kind: LinkKind::TorFabric { tor, fabric },
                        state: LinkState::Up,
                    });
                }
            }
            for fabric in 0..FABRICS_PER_POD as u8 {
                for spine in 0..UPLINKS_PER_FABRIC as u8 {
                    links.push(Link {
                        pod,
                        kind: LinkKind::FabricSpine { fabric, spine },
                        state: LinkState::Up,
                    });
                }
            }
        }
        Fabric { pods, links }
    }

    /// The ~100K-link instance of §4.8.
    pub fn paper_scale() -> Fabric {
        Fabric::new(260)
    }

    /// Total number of links.
    pub fn n_links(&self) -> usize {
        self.links.len()
    }

    /// Access a link.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.0 as usize]
    }

    /// Mutate a link's state.
    pub fn set_state(&mut self, id: LinkId, state: LinkState) {
        self.links[id.0 as usize].state = state;
    }

    /// Iterate all links of one pod.
    pub fn pod_links(&self, pod: u32) -> &[Link] {
        let start = pod as usize * LINKS_PER_POD;
        &self.links[start..start + LINKS_PER_POD]
    }

    /// Link ids of one pod.
    pub fn pod_link_ids(&self, pod: u32) -> impl Iterator<Item = LinkId> {
        let start = pod * LINKS_PER_POD as u32;
        (start..start + LINKS_PER_POD as u32).map(LinkId)
    }

    /// Fraction of spine paths still available for the worst ToR of `pod`,
    /// counting Disabled links as lost paths (corrupting-but-active links
    /// still carry traffic).
    pub fn least_paths_fraction_in_pod(&self, pod: u32) -> f64 {
        let links = self.pod_links(pod);
        // spine uplinks up per fabric switch
        let mut upcount = [0u32; FABRICS_PER_POD];
        let mut tor_up = [[false; FABRICS_PER_POD]; TORS_PER_POD];
        for l in links {
            let up = l.state != LinkState::Disabled;
            match l.kind {
                LinkKind::FabricSpine { fabric, .. } => {
                    if up {
                        upcount[fabric as usize] += 1;
                    }
                }
                LinkKind::TorFabric { tor, fabric } => {
                    tor_up[tor as usize][fabric as usize] = up;
                }
            }
        }
        let mut min_paths = u32::MAX;
        for tor in tor_up.iter() {
            let paths: u32 = (0..FABRICS_PER_POD)
                .map(|f| if tor[f] { upcount[f] } else { 0 })
                .sum();
            min_paths = min_paths.min(paths);
        }
        min_paths as f64 / PATHS_PER_TOR as f64
    }

    /// Pod uplink capacity fraction: effective capacity of the pod's links
    /// (ToR→spine, both tiers) relative to nominal. `effective_speed`
    /// gives a link's speed fraction (e.g. the Fig 8 lookup for
    /// LinkGuardian-enabled links); Disabled links contribute zero.
    pub fn pod_capacity_fraction(&self, pod: u32, effective_speed: impl Fn(&Link) -> f64) -> f64 {
        let links = self.pod_links(pod);
        let total: f64 = links.iter().map(&effective_speed).sum();
        total / links.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_is_about_100k_links() {
        let f = Fabric::paper_scale();
        assert_eq!(f.n_links(), 99_840);
        assert_eq!(LINKS_PER_POD, 384);
        assert_eq!(PATHS_PER_TOR, 192);
    }

    #[test]
    fn healthy_pod_has_full_paths_and_capacity() {
        let f = Fabric::new(2);
        assert_eq!(f.least_paths_fraction_in_pod(0), 1.0);
        assert_eq!(f.pod_capacity_fraction(0, |_| 1.0), 1.0);
    }

    #[test]
    fn disabling_one_tor_fabric_link_costs_48_paths() {
        let mut f = Fabric::new(1);
        // find the link (tor 0, fabric 0)
        let id = f
            .pod_link_ids(0)
            .find(|&id| matches!(f.link(id).kind, LinkKind::TorFabric { tor: 0, fabric: 0 }))
            .unwrap();
        f.set_state(id, LinkState::Disabled);
        // ToR 0 loses one fabric switch = 48 of 192 paths
        let frac = f.least_paths_fraction_in_pod(0);
        assert!((frac - 144.0 / 192.0).abs() < 1e-12, "{frac}");
    }

    #[test]
    fn disabling_one_spine_link_costs_one_path_for_every_tor() {
        let mut f = Fabric::new(1);
        let id = f
            .pod_link_ids(0)
            .find(|&id| {
                matches!(
                    f.link(id).kind,
                    LinkKind::FabricSpine {
                        fabric: 1,
                        spine: 7
                    }
                )
            })
            .unwrap();
        f.set_state(id, LinkState::Disabled);
        let frac = f.least_paths_fraction_in_pod(0);
        assert!((frac - 191.0 / 192.0).abs() < 1e-12, "{frac}");
    }

    #[test]
    fn corrupting_links_still_carry_paths() {
        let mut f = Fabric::new(1);
        let id = LinkId(0);
        f.set_state(
            id,
            LinkState::Corrupting {
                loss_rate: 1e-3,
                lg_active: false,
            },
        );
        assert_eq!(f.least_paths_fraction_in_pod(0), 1.0);
    }

    #[test]
    fn capacity_reflects_effective_speed() {
        let mut f = Fabric::new(1);
        f.set_state(
            LinkId(3),
            LinkState::Corrupting {
                loss_rate: 1e-3,
                lg_active: true,
            },
        );
        let cap = f.pod_capacity_fraction(0, |l| match l.state {
            LinkState::Corrupting {
                lg_active: true, ..
            } => 0.92,
            LinkState::Disabled => 0.0,
            _ => 1.0,
        });
        let expect = (383.0 + 0.92) / 384.0;
        assert!((cap - expect).abs() < 1e-12);
    }
}
