//! Root crate: re-exports for examples and integration tests.
//!
//! See the workspace crates for the actual implementation; this package
//! hosts the cross-crate integration tests (`tests/`) and runnable
//! examples (`examples/`).

pub use lg_fabric;
pub use lg_fec;
pub use lg_link;
pub use lg_packet;
pub use lg_sim;
pub use lg_switch;
pub use lg_testbed;
pub use lg_transport;
pub use lg_workload;
pub use linkguardian;
