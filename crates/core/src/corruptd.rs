//! `corruptd` — the control-plane link-corruption monitor (Appendix C).
//!
//! A daemon on each switch's local control plane polls the driver every
//! second for per-port `framesRxOk` / `framesRxAll`, feeds the deltas
//! into the shared windowed health estimator
//! ([`lg_obs::health::HealthEstimator`]), and — when the port leaves the
//! `Healthy` state (windowed loss rate at the activation threshold 1e-8,
//! the boundary of a "healthy" link) — notifies the upstream
//! transmitting switch to activate LinkGuardian with the number of
//! retransmitted copies dictated by Eq. 2 *from the observed rate*, not
//! from any oracle knowledge of the loss process.
//!
//! Daemons communicate through a publish/subscribe bus (the paper uses
//! Redis); [`CorruptionBus`] is the in-process equivalent.

use crate::eq::retx_copies;
use lg_obs::health::{HealthConfig, HealthEstimator, LinkHealth};
use lg_sim::{Duration, Time};
use lg_switch::PortCounters;
use serde::{Deserialize, Serialize};

/// The paper's polling interval.
pub const POLL_INTERVAL: Duration = Duration(1_000_000_000_000); // 1 s
/// Sliding window over which the loss rate is computed, in polls
/// (~100 s of 1 Hz polls ≈ the paper's 100M-frame window at line rate).
pub const WINDOW_POLLS: usize = 100;
/// Activation threshold: a loss rate of 1e-8 (BER ≈ 1e-12 for MTU frames)
/// is the boundary of a healthy link.
pub const ACTIVATION_THRESHOLD: f64 = 1e-8;

/// The estimator configuration `corruptd` runs with: activation at the
/// paper's 1e-8 boundary, the `Corrupting` tier at 1e-6 (a link CorrOpt
/// should also take out for repair), 2× downgrade hysteresis.
pub fn health_config() -> HealthConfig {
    HealthConfig {
        degraded_rate: ACTIVATION_THRESHOLD,
        corrupting_rate: 1e-6,
        clear_factor: 0.5,
        window_polls: WINDOW_POLLS,
        min_frames: 1_000,
        min_errors: 2,
    }
}

/// A corruption notification published on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionNotice {
    /// Switch that observed the corruption (the receiver side).
    pub observer_switch: u32,
    /// Port on which corruption was observed.
    pub port: usize,
    /// Measured loss rate over the window.
    pub loss_rate: f64,
    /// Retransmission copies the sender should use (Eq. 2).
    pub retx_copies: u32,
    /// When the detection happened.
    pub at: Time,
}

/// Per-port monitor state: the shared windowed estimator plus the
/// one-shot activation latch.
#[derive(Debug, Clone)]
struct PortMonitor {
    est: HealthEstimator,
    active: bool,
}

impl PortMonitor {
    fn new() -> PortMonitor {
        PortMonitor {
            est: HealthEstimator::new(health_config()),
            active: false,
        }
    }
}

/// The corruption-monitoring daemon for one switch.
#[derive(Debug)]
pub struct Corruptd {
    switch_id: u32,
    ports: Vec<PortMonitor>,
    target_loss_rate: f64,
}

impl Corruptd {
    /// Monitor `n_ports` ports of switch `switch_id`, activating
    /// LinkGuardian with Eq. 2 copies toward `target_loss_rate`.
    pub fn new(switch_id: u32, n_ports: usize, target_loss_rate: f64) -> Corruptd {
        Corruptd {
            switch_id,
            ports: (0..n_ports).map(|_| PortMonitor::new()).collect(),
            target_loss_rate,
        }
    }

    /// Poll one port's counters. Returns a notice when the windowed
    /// estimator moves the port out of `Healthy` (deactivation notices
    /// are not modeled; the paper repairs links out of band, §3.6).
    pub fn poll(
        &mut self,
        port: usize,
        counters: PortCounters,
        now: Time,
    ) -> Option<CorruptionNotice> {
        let mon = &mut self.ports[port];
        mon.est
            .observe_cumulative(now.as_ps(), counters.frames_rx_all, counters.frames_rx_ok);
        if !mon.active && mon.est.state() >= LinkHealth::Degraded {
            mon.active = true;
            let rate = mon.est.rate();
            Some(CorruptionNotice {
                observer_switch: self.switch_id,
                port,
                loss_rate: rate,
                retx_copies: retx_copies(rate, self.target_loss_rate),
                at: now,
            })
        } else {
            None
        }
    }

    /// Whether LinkGuardian has been activated for a port.
    pub fn is_active(&self, port: usize) -> bool {
        self.ports[port].active
    }

    /// The estimator's current health classification of a port.
    pub fn health(&self, port: usize) -> LinkHealth {
        self.ports[port].est.state()
    }

    /// The estimator's current windowed loss rate for a port.
    pub fn observed_rate(&self, port: usize) -> f64 {
        self.ports[port].est.rate()
    }

    /// Poll a port by reading `frames_rx_ok` / `frames_rx_all` from an
    /// [`lg_obs::MetricsRegistry`] snapshot instead of reaching into the
    /// switch directly — the same source the dashboards read. `inst` is
    /// the registry instance label the world used when snapshotting the
    /// port (e.g. `"sw_rx:1"`). Returns `None` (and does not advance the
    /// window) when the registry has no snapshot for that instance yet.
    pub fn poll_registry(
        &mut self,
        port: usize,
        registry: &lg_obs::MetricsRegistry,
        comp: &'static str,
        inst: &str,
        now: Time,
    ) -> Option<CorruptionNotice> {
        let ok = registry.latest_counter(comp, inst, "frames_rx_ok")?;
        let all = registry.latest_counter(comp, inst, "frames_rx_all")?;
        let counters = PortCounters {
            frames_rx_ok: ok,
            frames_rx_all: all,
            ..Default::default()
        };
        self.poll(port, counters, now)
    }
}

/// In-process publish/subscribe bus connecting `corruptd` daemons
/// (the paper uses Redis PubSub).
#[derive(Debug, Default)]
pub struct CorruptionBus {
    published: Vec<CorruptionNotice>,
    cursor_by_subscriber: std::collections::HashMap<u32, usize>,
}

impl CorruptionBus {
    /// An empty bus.
    pub fn new() -> CorruptionBus {
        CorruptionBus::default()
    }

    /// Publish a notice.
    pub fn publish(&mut self, n: CorruptionNotice) {
        self.published.push(n);
    }

    /// Drain notices not yet seen by `subscriber`.
    pub fn drain(&mut self, subscriber: u32) -> Vec<CorruptionNotice> {
        let cursor = self.cursor_by_subscriber.entry(subscriber).or_insert(0);
        let out = self.published[*cursor..].to_vec();
        *cursor = self.published.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(all: u64, ok: u64) -> PortCounters {
        PortCounters {
            frames_rx_all: all,
            frames_rx_ok: ok,
            ..Default::default()
        }
    }

    #[test]
    fn healthy_port_never_activates() {
        let mut d = Corruptd::new(1, 2, 1e-8);
        for i in 1..=10 {
            assert!(d
                .poll(
                    0,
                    counters(i * 1_000_000, i * 1_000_000),
                    Time::from_secs(i)
                )
                .is_none());
        }
        assert!(!d.is_active(0));
    }

    #[test]
    fn corrupting_port_activates_with_eq2_copies() {
        let mut d = Corruptd::new(7, 1, 1e-8);
        // 1e6 frames, 1000 errors → loss 1e-3 → N = 2
        let n = d
            .poll(0, counters(1_000_000, 999_000), Time::from_secs(1))
            .expect("activation");
        assert_eq!(n.observer_switch, 7);
        assert_eq!(n.port, 0);
        assert!((n.loss_rate - 1e-3).abs() < 1e-6);
        assert_eq!(n.retx_copies, 2);
        assert!(d.is_active(0));
        // already active: no duplicate notice
        assert!(d
            .poll(0, counters(2_000_000, 1_998_000), Time::from_secs(2))
            .is_none());
    }

    #[test]
    fn window_recovers_after_clean_period() {
        let mut d = Corruptd::new(1, 1, 1e-8);
        // A burst poll: 100k frames, 1000 errors → corrupting.
        assert!(d
            .poll(0, counters(100_000, 99_000), Time::from_secs(1))
            .is_some());
        assert_eq!(d.health(0), LinkHealth::Corrupting);
        // Clean polls push the burst out of the sliding window; once it
        // evicts, the estimator steps the port back to healthy (the
        // activation latch stays set — repairs are out of band, §3.6).
        let mut all = 100_000u64;
        for poll in 0..=(WINDOW_POLLS as u64) {
            all += 1_000_000;
            let _ = d.poll(0, counters(all, all - 1_000), Time::from_secs(2 + poll));
        }
        assert_eq!(d.health(0), LinkHealth::Healthy);
        assert!(d.observed_rate(0) < ACTIVATION_THRESHOLD);
        assert!(d.is_active(0), "activation is one-shot");
    }

    #[test]
    fn ge_burst_trips_within_one_window_steady_low_rate_does_not() {
        use lg_link::{LossModel, LossProcess};
        use lg_sim::Rng;

        // Steady 1e-8 loss: polls of 200k frames carry ~0.002 expected
        // errors each — the estimator never leaves Healthy.
        let mut steady = Corruptd::new(1, 1, 1e-8);
        let mut lp = LossProcess::new(LossModel::Iid { rate: 1e-8 }, Rng::new(42));
        for poll in 1..=20u64 {
            for _ in 0..200_000 {
                let _ = lp.should_drop();
            }
            let c = counters(lp.frames(), lp.frames() - lp.drops());
            assert!(steady.poll(0, c, Time::from_secs(poll)).is_none());
        }
        assert!(!steady.is_active(0));
        assert_eq!(steady.health(0), LinkHealth::Healthy);

        // A Gilbert–Elliott process (mean rate 1e-3, mean burst 30): the
        // bad-state burst trips the degraded threshold within a single
        // poll window.
        let mut bursty = Corruptd::new(2, 1, 1e-8);
        let mut lp = LossProcess::new(LossModel::bursty(1e-3, 30.0), Rng::new(7));
        for _ in 0..300_000 {
            let _ = lp.should_drop();
        }
        assert!(lp.drops() > 0, "the GE process actually dropped frames");
        let c = counters(lp.frames(), lp.frames() - lp.drops());
        let n = bursty
            .poll(0, c, Time::from_secs(1))
            .expect("burst trips the threshold within one window");
        assert!(n.loss_rate >= ACTIVATION_THRESHOLD);
        assert!(bursty.health(0) >= LinkHealth::Degraded);
    }

    #[test]
    fn poll_registry_reads_same_source() {
        let mut reg = lg_obs::MetricsRegistry::new();
        let mut d = Corruptd::new(3, 1, 1e-8);
        // No snapshot yet: nothing to poll.
        assert!(d
            .poll_registry(0, &reg, "switch_port", "sw_rx:0", Time::from_secs(1))
            .is_none());
        assert!(!d.is_active(0));
        // 1e6 frames, 1000 errors → loss 1e-3 → activation with N = 2.
        reg.record(
            1_000_000_000_000,
            "switch_port",
            "sw_rx:0",
            &counters(1_000_000, 999_000),
        );
        let n = d
            .poll_registry(0, &reg, "switch_port", "sw_rx:0", Time::from_secs(1))
            .expect("activation");
        assert!((n.loss_rate - 1e-3).abs() < 1e-6);
        assert_eq!(n.retx_copies, 2);
        assert!(d.is_active(0));
    }

    #[test]
    fn bus_pubsub_cursors() {
        let mut bus = CorruptionBus::new();
        let n = CorruptionNotice {
            observer_switch: 1,
            port: 0,
            loss_rate: 1e-4,
            retx_copies: 1,
            at: Time::ZERO,
        };
        bus.publish(n);
        assert_eq!(bus.drain(42).len(), 1);
        assert_eq!(bus.drain(42).len(), 0);
        bus.publish(n);
        bus.publish(n);
        assert_eq!(bus.drain(42).len(), 2);
        // a different subscriber sees everything from the start
        assert_eq!(bus.drain(43).len(), 3);
    }
}
