//! The LinkGuardian **sender** switch state machine (§3, Appendix A).
//!
//! Attached to the egress port feeding the corrupting link, the sender:
//!
//! * stamps each transmitted packet with the 3-byte data header and
//!   buffers a copy (egress mirroring → recirculation Tx buffer);
//! * frees buffered copies when the receiver's cumulative
//!   `latestRxSeqNo` advances (piggybacked or explicit ACKs);
//! * on a loss notification, retransmits `N` copies (Eq. 2) of each
//!   requested packet through the high-priority queue (multicast
//!   primitive) and then drops the buffered copy;
//! * emits self-replenishing **dummy packets** whenever the normal queue
//!   empties so the receiver can detect tail losses without a timeout
//!   (§3.2);
//! * absorbs PFC pause/resume frames from the receiver's backpressure
//!   mechanism, pausing only the normal packet queue (§3.3/§3.5).

use crate::config::LgConfig;
use crate::seqmap::{abs_of, wire_of};
use lg_packet::lg::{LgAck, LgData, LgPacketType, LossNotification};
use lg_packet::{LgControl, NodeId, Packet, Payload};
use lg_sim::{Duration, Rng, Time};
use lg_switch::recirc::{DEFAULT_LOOP_LATENCY, RECIRC_DRAIN_RATE};
use lg_switch::{Class, RecircBuffer, RecircStats};
use serde::{Deserialize, Serialize};

/// Side effects the testbed must apply after feeding the sender an input.
#[derive(Debug)]
pub enum SenderAction {
    /// Enqueue `pkt` on the protected egress port in `class` after
    /// `delay` (recirculation service time for retransmissions).
    Emit {
        /// The packet to enqueue.
        pkt: Packet,
        /// Traffic class.
        class: Class,
        /// Extra dataplane delay before the packet reaches the queue.
        delay: Duration,
    },
    /// Pause (`true`) or resume (`false`) the normal packet queue on the
    /// protected egress port.
    PauseNormal(bool),
}

/// Counters the sender accumulates.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct SenderStats {
    /// Protected (stamped + buffered) packets transmitted.
    pub protected_sent: u64,
    /// Loss-notification packets processed.
    pub notifications_rx: u64,
    /// Distinct packets retransmitted.
    pub retx_packets: u64,
    /// Total retransmitted copies emitted (≥ `retx_packets`).
    pub retx_copies_sent: u64,
    /// Notification entries that referred to packets no longer buffered.
    pub retx_misses: u64,
    /// Dummy packets emitted.
    pub dummies_sent: u64,
    /// Packets that could not be buffered (Tx buffer full) and were sent
    /// unprotected-but-stamped.
    pub buffer_overflows: u64,
    /// Pause frames absorbed.
    pub pauses_rx: u64,
    /// Resume frames absorbed.
    pub resumes_rx: u64,
}

/// The sender-side state machine for one protected link direction.
#[derive(Debug)]
pub struct LgSender {
    cfg: LgConfig,
    /// Synthetic address of this switch for control packets it originates.
    pub node: NodeId,
    /// Address of the peer (receiver switch).
    pub peer: NodeId,
    active: bool,
    /// Absolute index of the last protected packet sent (0 = none).
    next_seq: u64,
    /// Sender's copy of the receiver's cumulative latestRxSeqNo.
    latest_rx: u64,
    tx_buffer: RecircBuffer,
    n_copies: u32,
    rng: Rng,
    last_dummy_at: Option<Time>,
    stats: SenderStats,
}

impl LgSender {
    /// Create a (dormant) sender.
    pub fn new(cfg: LgConfig, node: NodeId, peer: NodeId) -> LgSender {
        let tx_buffer = RecircBuffer::new(cfg.tx_buffer_cap);
        let n_copies = cfg.n_copies();
        LgSender {
            rng: Rng::new(0xC0FF_EE00 ^ node.0 as u64),
            cfg,
            node,
            peer,
            active: false,
            next_seq: 0,
            latest_rx: 0,
            tx_buffer,
            n_copies,
            last_dummy_at: None,
            stats: SenderStats::default(),
        }
    }

    /// Activate protection (done by `corruptd` when corruption is
    /// detected). Until activated the sender is a no-op pass-through.
    pub fn activate(&mut self, actual_loss_rate: f64) {
        self.active = true;
        self.cfg.actual_loss_rate = actual_loss_rate;
        self.n_copies = self.cfg.n_copies();
    }

    /// Deactivate protection.
    pub fn deactivate(&mut self) {
        self.active = false;
    }

    /// Whether LinkGuardian is protecting the link.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Number of retransmitted copies per lost packet currently in force.
    pub fn n_copies(&self) -> u32 {
        self.n_copies
    }

    /// Called by the testbed when a packet is dequeued for transmission on
    /// the protected link. Stamps the data header and mirrors a copy into
    /// the Tx buffer. Already-stamped packets (retransmitted copies,
    /// dummies) pass through untouched.
    pub fn on_transmit(&mut self, pkt: &mut Packet, now: Time) {
        if !self.active || pkt.lg_data.is_some() {
            return;
        }
        // Another instance's control (explicit ACKs, dummies, loss
        // notifications, pause frames) crosses un-tunneled: it is
        // loss-tolerant by design (idempotent, replicated via
        // `control_copies` under bidirectional corruption, §5), and
        // tunneling it would chain each instance's ACKs into the other's
        // sequence space ad infinitum — and hold time-critical pause
        // frames behind reordering gaps.
        if matches!(pkt.payload, Payload::Lg(_)) {
            return;
        }
        self.next_seq += 1;
        let seq = self.next_seq;
        pkt.lg_data = Some(LgData {
            seq: wire_of(seq),
            kind: LgPacketType::Original,
        });
        self.stats.protected_sent += 1;
        // Egress mirroring: buffer a copy (with the header) until ACKed.
        if self.tx_buffer.insert(seq, pkt.clone(), now).is_err() {
            self.stats.buffer_overflows += 1;
        }
    }

    /// Called when the protected egress port runs dry (normal and control
    /// queues empty): the self-replenishing dummy queue transmits. Returns
    /// the dummy packets to enqueue at strictly-lowest priority.
    ///
    /// Dummies carry the sequence number of the last protected packet so a
    /// tail loss shows up as a gap at the receiver. They are only useful
    /// while something is unACKed; once the receiver has confirmed
    /// everything the queue idles (behaviourally identical to the paper's
    /// continuously self-replenishing queue, whose extra dummies are
    /// no-ops at the receiver).
    pub fn make_dummies(&mut self, now: Time) -> Vec<Packet> {
        if !self.active || self.cfg.dummy_copies == 0 {
            return Vec::new();
        }
        if self.next_seq == 0 || self.latest_rx >= self.next_seq {
            return Vec::new();
        }
        // Pace dummy bursts: the hardware queue replenishes via egress
        // mirroring (one recirculation pass between dummies); back-to-back
        // emission at 100 G would add nothing the receiver acts on.
        if let Some(last) = self.last_dummy_at {
            if now.saturating_since(last) < Duration::from_ns(300) {
                return Vec::new();
            }
        }
        self.last_dummy_at = Some(now);
        let mut out = Vec::with_capacity(self.cfg.dummy_copies as usize);
        for _ in 0..self.cfg.dummy_copies {
            let mut p = Packet::lg_control(self.node, self.peer, LgControl::Dummy, now);
            p.lg_data = Some(LgData {
                seq: wire_of(self.next_seq),
                kind: LgPacketType::Dummy,
            });
            self.stats.dummies_sent += 1;
            out.push(p);
        }
        out
    }

    /// True while some transmitted packet is not yet acknowledged.
    pub fn has_unacked(&self) -> bool {
        self.active && self.latest_rx < self.next_seq
    }

    /// Called for every packet arriving on the reverse direction of the
    /// protected link. Absorbs LinkGuardian control (explicit ACKs, loss
    /// notifications, pause frames) and strips piggybacked ACK headers.
    ///
    /// Returns the packet to forward onward (if it carries tenant data)
    /// plus the side-effect actions.
    pub fn on_reverse_rx(
        &mut self,
        mut pkt: Packet,
        now: Time,
    ) -> (Option<Packet>, Vec<SenderAction>) {
        let mut actions = Vec::new();
        let ack = pkt.lg_ack.take();
        // A loss notification is applied before any piggybacked ACK in the
        // same frame: the requested packets must be retransmitted before
        // the cumulative ACK frees them (Appendix A.2 checks reTxReqs
        // before dropping).
        if let Payload::Lg(LgControl::LossNotification(n)) = &pkt.payload {
            let n = *n;
            self.process_loss_notification(n, now, &mut actions);
            if let Some(ack) = ack {
                self.process_ack(ack, now);
            }
            return (None, actions);
        }
        if let Some(ack) = ack {
            self.process_ack(ack, now);
        }
        match &pkt.payload {
            Payload::Lg(LgControl::LossNotification(_)) => unreachable!("handled above"),
            Payload::Lg(LgControl::ExplicitAck) => (None, actions),
            Payload::Lg(LgControl::Pause(p)) => {
                if p.pause {
                    self.stats.pauses_rx += 1;
                } else {
                    self.stats.resumes_rx += 1;
                }
                actions.push(SenderAction::PauseNormal(p.pause));
                (None, actions)
            }
            Payload::Lg(LgControl::Dummy) => (None, actions),
            _ => (Some(pkt), actions),
        }
    }

    fn process_ack(&mut self, ack: LgAck, now: Time) {
        let abs = abs_of(ack.latest_rx, self.reference());
        if abs > self.latest_rx {
            self.latest_rx = abs;
            // Drop buffered copies of successfully delivered packets.
            self.tx_buffer.remove_up_to(abs, now);
        }
    }

    fn process_loss_notification(
        &mut self,
        n: LossNotification,
        now: Time,
        actions: &mut Vec<SenderAction>,
    ) {
        self.stats.notifications_rx += 1;
        let refr = self.reference();
        let first = abs_of(n.first_lost, refr);
        let latest = abs_of(n.latest_rx, refr);
        // The notification also carries the receiver's latestRxSeqNo.
        if latest > self.latest_rx {
            self.latest_rx = latest;
        }
        for seq in first..first + n.count as u64 {
            match self.tx_buffer.remove(seq, now) {
                Some(mut copy) => {
                    self.stats.retx_packets += 1;
                    if let Some(h) = copy.lg_data.as_mut() {
                        h.kind = LgPacketType::Retransmit;
                    }
                    // Multicast primitive: N copies through the
                    // high-priority queue. The buffered copy must first
                    // come around the recirculation ring: with B bytes
                    // recirculating, the requested packet is on average
                    // half a ring away at the 100 G recirculation drain
                    // rate — this is what makes the paper's measured
                    // retransmission delay (Fig 19, 2–6 µs) far exceed
                    // one pipeline pass, and it grows with Tx-buffer
                    // occupancy (hence with link speed).
                    let ring_delay = RECIRC_DRAIN_RATE.serialize(self.tx_buffer.bytes() / 2);
                    let (lo, hi) = self.cfg.retx_extra_delay;
                    let jitter = Duration::from_ps(
                        self.rng
                            .range(lo.as_ps().min(hi.as_ps()), hi.as_ps().max(lo.as_ps())),
                    );
                    let delay = self.tx_buffer.loop_latency() + ring_delay + jitter;
                    for _ in 0..self.n_copies {
                        self.stats.retx_copies_sent += 1;
                        actions.push(SenderAction::Emit {
                            pkt: copy.clone(),
                            class: Class::Control,
                            delay,
                        });
                    }
                }
                None => {
                    // Already freed (duplicate notification or ACK race):
                    // nothing to retransmit; the receiver's ackNoTimeout
                    // is the fallback.
                    self.stats.retx_misses += 1;
                }
            }
        }
        // Free any remaining acknowledged copies (not retransmitted).
        let latest_now = self.latest_rx;
        self.tx_buffer.remove_up_to(latest_now, now);
    }

    fn reference(&self) -> u64 {
        // Wire-seq reconstruction reference: anything within ±32K of the
        // true value; the latest sent packet always qualifies because the
        // Tx window is far smaller than 32K packets.
        self.next_seq.max(1)
    }

    /// Current Tx buffer occupancy in bytes.
    pub fn tx_buffer_bytes(&self) -> u64 {
        self.tx_buffer.bytes()
    }

    /// Tx buffer statistics (high watermark, recirculation loops).
    pub fn tx_buffer_stats(&self) -> RecircStats {
        self.tx_buffer.stats()
    }

    /// Counters.
    pub fn stats(&self) -> SenderStats {
        self.stats
    }

    /// The configuration in force.
    pub fn config(&self) -> &LgConfig {
        &self.cfg
    }

    /// Absolute index of the last protected packet sent.
    pub fn last_sent(&self) -> u64 {
        self.next_seq
    }

    /// Sender's view of the receiver's cumulative ACK.
    pub fn acked(&self) -> u64 {
        self.latest_rx
    }

    /// Default recirculation loop latency used for retransmission delay.
    pub fn loop_latency(&self) -> Duration {
        DEFAULT_LOOP_LATENCY
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_link::LinkSpeed;
    use lg_packet::SeqNo;

    fn mk_sender() -> LgSender {
        let cfg = LgConfig::for_speed(LinkSpeed::G25, 1e-3);
        let mut s = LgSender::new(cfg, NodeId(100), NodeId(101));
        s.activate(1e-3);
        s
    }

    fn data_pkt() -> Packet {
        Packet::raw(NodeId(1), NodeId(2), 1518, Time::ZERO)
    }

    fn ack(latest_abs: u64) -> Packet {
        let mut p =
            Packet::lg_control(NodeId(101), NodeId(100), LgControl::ExplicitAck, Time::ZERO);
        p.lg_ack = Some(LgAck {
            latest_rx: wire_of(latest_abs),
            explicit: true,
        });
        p
    }

    fn notif(first: u64, count: u16, latest: u64) -> Packet {
        Packet::lg_control(
            NodeId(101),
            NodeId(100),
            LgControl::LossNotification(LossNotification {
                first_lost: wire_of(first),
                count,
                latest_rx: wire_of(latest),
            }),
            Time::ZERO,
        )
    }

    #[test]
    fn stamps_and_buffers_protected_packets() {
        let mut s = mk_sender();
        let mut p = data_pkt();
        s.on_transmit(&mut p, Time::ZERO);
        let h = p.lg_data.unwrap();
        assert_eq!(h.seq, SeqNo::new(1, false));
        assert_eq!(h.kind, LgPacketType::Original);
        assert_eq!(s.tx_buffer_bytes(), p.frame_len() as u64);
        assert_eq!(s.stats().protected_sent, 1);
        // sequence increments
        let mut p2 = data_pkt();
        s.on_transmit(&mut p2, Time::ZERO);
        assert_eq!(p2.lg_data.unwrap().seq, SeqNo::new(2, false));
    }

    #[test]
    fn inactive_sender_is_passthrough() {
        let cfg = LgConfig::for_speed(LinkSpeed::G25, 1e-3);
        let mut s = LgSender::new(cfg, NodeId(100), NodeId(101));
        let mut p = data_pkt();
        s.on_transmit(&mut p, Time::ZERO);
        assert!(p.lg_data.is_none());
        assert_eq!(s.tx_buffer_bytes(), 0);
        assert!(s.make_dummies(Time::ZERO).is_empty());
    }

    #[test]
    fn already_stamped_packets_not_rebuffered() {
        let mut s = mk_sender();
        let mut p = data_pkt();
        s.on_transmit(&mut p, Time::ZERO);
        let bytes = s.tx_buffer_bytes();
        // simulate the same packet being dequeued again (retx copy)
        let mut copy = p.clone();
        s.on_transmit(&mut copy, Time::ZERO);
        assert_eq!(s.tx_buffer_bytes(), bytes);
        assert_eq!(s.last_sent(), 1);
    }

    #[test]
    fn ack_frees_buffer_prefix() {
        let mut s = mk_sender();
        for _ in 0..5 {
            s.on_transmit(&mut data_pkt(), Time::ZERO);
        }
        assert_eq!(s.tx_buffer_bytes(), 5 * 1518 + 5 * 3);
        let (fwd, actions) = s.on_reverse_rx(ack(3), Time::from_us(1));
        assert!(fwd.is_none());
        assert!(actions.is_empty());
        assert_eq!(s.acked(), 3);
        assert_eq!(s.tx_buffer_bytes(), 2 * (1518 + 3));
    }

    #[test]
    fn piggybacked_ack_stripped_and_packet_forwarded() {
        let mut s = mk_sender();
        s.on_transmit(&mut data_pkt(), Time::ZERO);
        let mut rev = data_pkt();
        rev.lg_ack = Some(LgAck {
            latest_rx: wire_of(1),
            explicit: false,
        });
        let (fwd, _) = s.on_reverse_rx(rev, Time::from_us(1));
        let fwd = fwd.expect("data packet forwarded");
        assert!(fwd.lg_ack.is_none(), "ACK header stripped");
        assert_eq!(s.acked(), 1);
    }

    #[test]
    fn loss_notification_triggers_n_copies() {
        let mut s = mk_sender(); // 1e-3 actual, 1e-8 target → N = 2
        assert_eq!(s.n_copies(), 2);
        for _ in 0..4 {
            s.on_transmit(&mut data_pkt(), Time::ZERO);
        }
        // packet 2 lost; receiver saw 4
        let (_, actions) = s.on_reverse_rx(notif(2, 1, 4), Time::from_us(1));
        let emits: Vec<_> = actions
            .iter()
            .filter_map(|a| match a {
                SenderAction::Emit { pkt, class, .. } => Some((pkt, class)),
                _ => None,
            })
            .collect();
        assert_eq!(emits.len(), 2, "N=2 copies");
        for (pkt, class) in &emits {
            assert_eq!(**class, Class::Control, "retx ride high priority");
            let h = pkt.lg_data.unwrap();
            assert_eq!(h.kind, LgPacketType::Retransmit);
            assert_eq!(h.seq, wire_of(2));
        }
        assert_eq!(s.stats().retx_packets, 1);
        assert_eq!(s.stats().retx_copies_sent, 2);
        // everything ≤ latest(4) freed: buffer now empty
        assert_eq!(s.tx_buffer_bytes(), 0);
    }

    #[test]
    fn consecutive_losses_all_retransmitted() {
        let mut s = mk_sender();
        for _ in 0..6 {
            s.on_transmit(&mut data_pkt(), Time::ZERO);
        }
        let (_, actions) = s.on_reverse_rx(notif(2, 3, 5), Time::from_us(1));
        let seqs: Vec<u16> = actions
            .iter()
            .filter_map(|a| match a {
                SenderAction::Emit { pkt, .. } => Some(pkt.lg_data.unwrap().seq.raw()),
                _ => None,
            })
            .collect();
        // 3 lost packets × 2 copies
        assert_eq!(seqs.len(), 6);
        assert_eq!(s.stats().retx_packets, 3);
    }

    #[test]
    fn notification_for_freed_packet_is_a_miss() {
        let mut s = mk_sender();
        s.on_transmit(&mut data_pkt(), Time::ZERO);
        s.on_reverse_rx(ack(1), Time::from_us(1));
        let (_, actions) = s.on_reverse_rx(notif(1, 1, 1), Time::from_us(2));
        assert!(actions.is_empty());
        assert_eq!(s.stats().retx_misses, 1);
    }

    #[test]
    fn dummies_only_while_unacked() {
        let mut s = mk_sender();
        assert!(s.make_dummies(Time::ZERO).is_empty(), "nothing sent yet");
        s.on_transmit(&mut data_pkt(), Time::ZERO);
        let d = s.make_dummies(Time::ZERO);
        assert_eq!(d.len(), 1);
        assert!(d[0].is_lg_dummy());
        assert_eq!(d[0].lg_data.unwrap().seq, wire_of(1));
        assert_eq!(d[0].lg_data.unwrap().kind, LgPacketType::Dummy);
        s.on_reverse_rx(ack(1), Time::from_us(1));
        assert!(s.make_dummies(Time::from_us(1)).is_empty(), "all acked");
    }

    #[test]
    fn multiple_dummy_copies_for_bursty_loss() {
        let cfg = LgConfig {
            dummy_copies: 3,
            ..LgConfig::for_speed(LinkSpeed::G25, 1e-3)
        };
        let mut s = LgSender::new(cfg, NodeId(100), NodeId(101));
        s.activate(1e-3);
        s.on_transmit(&mut data_pkt(), Time::ZERO);
        assert_eq!(s.make_dummies(Time::ZERO).len(), 3);
    }

    #[test]
    fn pause_frames_absorbed_into_actions() {
        let mut s = mk_sender();
        let pause = Packet::lg_control(
            NodeId(101),
            NodeId(100),
            LgControl::Pause(lg_packet::lg::PauseFrame {
                pause: true,
                class: Class::Normal as u8,
            }),
            Time::ZERO,
        );
        let (fwd, actions) = s.on_reverse_rx(pause, Time::ZERO);
        assert!(fwd.is_none());
        assert!(matches!(actions[0], SenderAction::PauseNormal(true)));
        assert_eq!(s.stats().pauses_rx, 1);
    }

    #[test]
    fn tx_buffer_overflow_counted_not_fatal() {
        let cfg = LgConfig {
            tx_buffer_cap: 2000,
            ..LgConfig::for_speed(LinkSpeed::G25, 1e-3)
        };
        let mut s = LgSender::new(cfg, NodeId(100), NodeId(101));
        s.activate(1e-3);
        s.on_transmit(&mut data_pkt(), Time::ZERO); // 1521 bytes buffered
        let mut p = data_pkt();
        s.on_transmit(&mut p, Time::ZERO); // would exceed 2000
        assert!(p.lg_data.is_some(), "still stamped");
        assert_eq!(s.stats().buffer_overflows, 1);
    }
}
