//! The discrete-event queue and simulation driver.
//!
//! The kernel is generic over the event payload type `E`. Events scheduled
//! for the same instant are delivered in the order they were scheduled
//! (FIFO tie-break on a monotonically increasing sequence number), which
//! keeps simulations fully deterministic.

use crate::time::{Duration, Time};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Handle to a scheduled event; can be used to cancel it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventHandle(u64);

struct Scheduled<E> {
    at: Time,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Scheduled<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Scheduled<E> {}
impl<E> PartialOrd for Scheduled<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Scheduled<E> {
    // Reverse ordering: BinaryHeap is a max-heap, we want earliest-first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic discrete-event queue.
///
/// `pop` returns events in (time, schedule-order) order and advances the
/// simulation clock. Cancellation is lazy: cancelled handles are recorded
/// and the matching event is skipped when it reaches the head of the heap.
pub struct EventQueue<E> {
    heap: BinaryHeap<Scheduled<E>>,
    now: Time,
    next_seq: u64,
    cancelled: std::collections::HashSet<u64>,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue with the clock at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: Time::ZERO,
            next_seq: 0,
            cancelled: std::collections::HashSet::new(),
        }
    }

    /// The current simulation time (the timestamp of the last popped event).
    pub fn now(&self) -> Time {
        self.now
    }

    /// Number of pending (non-cancelled) events.
    pub fn len(&self) -> usize {
        self.heap.len() - self.cancelled.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past (before the current clock).
    pub fn schedule_at(&mut self, at: Time, payload: E) -> EventHandle {
        assert!(
            at >= self.now,
            "cannot schedule in the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
        EventHandle(seq)
    }

    /// Schedule `payload` after delay `d` from now.
    pub fn schedule_after(&mut self, d: Duration, payload: E) -> EventHandle {
        let at = self.now + d;
        self.schedule_at(at, payload)
    }

    /// Cancel a previously scheduled event. Returns true if the event was
    /// still pending (i.e. had not already fired or been cancelled).
    pub fn cancel(&mut self, h: EventHandle) -> bool {
        if h.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(h.0)
    }

    /// Pop the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(Time, E)> {
        while let Some(ev) = self.heap.pop() {
            if self.cancelled.remove(&ev.seq) {
                continue;
            }
            debug_assert!(ev.at >= self.now);
            self.now = ev.at;
            return Some((ev.at, ev.payload));
        }
        None
    }

    /// Peek at the timestamp of the next pending event without popping it.
    pub fn peek_time(&mut self) -> Option<Time> {
        // Drop cancelled events from the head so the peek is accurate.
        while let Some(head) = self.heap.peek() {
            if self.cancelled.contains(&head.seq) {
                let ev = self.heap.pop().expect("peeked");
                self.cancelled.remove(&ev.seq);
                continue;
            }
            return Some(head.at);
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(30), "c");
        q.schedule_at(Time::from_ns(10), "a");
        q.schedule_at(Time::from_ns(20), "b");
        assert_eq!(q.pop(), Some((Time::from_ns(10), "a")));
        assert_eq!(q.pop(), Some((Time::from_ns(20), "b")));
        assert_eq!(q.pop(), Some((Time::from_ns(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn same_time_events_are_fifo() {
        let mut q = EventQueue::new();
        let t = Time::from_ns(5);
        for i in 0..100 {
            q.schedule_at(t, i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some((t, i)));
        }
    }

    #[test]
    fn clock_advances_with_pop() {
        let mut q = EventQueue::new();
        q.schedule_after(Duration::from_ns(7), ());
        assert_eq!(q.now(), Time::ZERO);
        q.pop();
        assert_eq!(q.now(), Time::from_ns(7));
        // schedule_after is now relative to the new clock
        q.schedule_after(Duration::from_ns(3), ());
        assert_eq!(q.pop(), Some((Time::from_ns(10), ())));
    }

    #[test]
    #[should_panic(expected = "cannot schedule in the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule_at(Time::from_ns(10), ());
        q.pop();
        q.schedule_at(Time::from_ns(5), ());
    }

    #[test]
    fn cancellation_skips_event() {
        let mut q = EventQueue::new();
        let h1 = q.schedule_at(Time::from_ns(1), 1);
        q.schedule_at(Time::from_ns(2), 2);
        assert!(q.cancel(h1));
        assert!(!q.cancel(h1), "double-cancel reports false");
        assert_eq!(q.len(), 1);
        assert_eq!(q.pop(), Some((Time::from_ns(2), 2)));
    }

    #[test]
    fn peek_time_sees_through_cancelled_events() {
        let mut q = EventQueue::new();
        let h = q.schedule_at(Time::from_ns(1), 1);
        q.schedule_at(Time::from_ns(9), 2);
        q.cancel(h);
        assert_eq!(q.peek_time(), Some(Time::from_ns(9)));
        assert_eq!(q.pop(), Some((Time::from_ns(9), 2)));
    }
}
