//! Log-bucketed histogram for registry metrics.
//!
//! Same shape as `lg_sim::stats::LogHistogram` (power-of-two buckets with
//! linear sub-buckets) but dependency-free so `lg-obs` stays at the bottom
//! of the crate graph. Bounded relative error `1/sub_buckets`, constant
//! memory, O(1) record.

/// A histogram over `u64` values with logarithmic buckets.
#[derive(Debug, Clone)]
pub struct LogHist {
    sub: u32,
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

/// A compact quantile summary of a histogram (what goes into JSONL).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct HistSummary {
    /// Number of recorded values.
    pub count: u64,
    /// Smallest recorded value (0 when empty).
    pub min: u64,
    /// Largest recorded value (0 when empty).
    pub max: u64,
    /// Mean of recorded values (0 when empty).
    pub mean: f64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

impl LogHist {
    /// A histogram with `sub_buckets` linear sub-buckets per octave
    /// (relative error ≤ 1/sub_buckets).
    pub fn new(sub_buckets: u32) -> LogHist {
        assert!(sub_buckets.is_power_of_two(), "sub_buckets: power of two");
        LogHist {
            sub: sub_buckets,
            counts: vec![0; (65 * sub_buckets) as usize],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket(&self, v: u64) -> usize {
        if v < self.sub as u64 {
            return v as usize;
        }
        let octave = 63 - v.leading_zeros();
        let shift = octave - self.sub.trailing_zeros();
        let sub = (v >> shift) - self.sub as u64;
        ((octave - self.sub.trailing_zeros() + 1) as u64 * self.sub as u64 + sub) as usize
    }

    /// Upper bound of bucket `i` (the value reported for quantiles).
    fn bucket_bound(&self, i: usize) -> u64 {
        let i = i as u64;
        let sub = self.sub as u64;
        if i < sub {
            return i;
        }
        let octave = (i / sub) - 1 + sub.trailing_zeros() as u64;
        let within = i % sub;
        let shift = (octave - sub.trailing_zeros() as u64) as u32;
        // The topmost octave's upper bound exceeds u64; saturate via u128.
        let bound = (((sub + within + 1) as u128) << shift) - 1;
        bound.min(u64::MAX as u128) as u64
    }

    /// Record one value.
    pub fn record(&mut self, v: u64) {
        let b = self.bucket(v);
        self.counts[b] += 1;
        self.total += 1;
        self.sum += v as u128;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Value at quantile `q` in `[0, 1]` (bucket upper bound, clamped to
    /// the observed max). Returns `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        self.value_at_rank(rank)
    }

    /// Value whose 1-based ascending rank is `rank` (bucket upper bound,
    /// clamped to the observed max). Returns `None` when empty or when
    /// `rank` is 0 / past the count. Lets callers that track exact ranks
    /// (e.g. a streaming aggregator answering below its tail reservoir)
    /// share one bucket walk with [`quantile`](Self::quantile).
    pub fn value_at_rank(&self, rank: u64) -> Option<u64> {
        if rank == 0 || rank > self.total {
            return None;
        }
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.bucket_bound(i).min(self.max));
            }
        }
        Some(self.max)
    }

    /// Merge another histogram into this one (bucket-wise count add).
    /// Both must use the same sub-bucket resolution. Merging is exact:
    /// the merged histogram is indistinguishable from one that recorded
    /// both value streams directly, so merge order cannot change any
    /// quantile — the determinism argument for per-shard aggregation.
    pub fn merge(&mut self, other: &LogHist) {
        assert_eq!(
            self.sub, other.sub,
            "merging histograms of different resolution"
        );
        for (c, &o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// The quantile summary serialized into metric snapshots.
    pub fn summary(&self) -> HistSummary {
        HistSummary {
            count: self.total,
            min: if self.total == 0 { 0 } else { self.min },
            max: self.max,
            mean: self.mean(),
            p50: self.quantile(0.5).unwrap_or(0),
            p99: self.quantile(0.99).unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_below_sub_buckets() {
        let mut h = LogHist::new(16);
        for v in 0..16 {
            h.record(v);
        }
        assert_eq!(h.len(), 16);
        assert_eq!(h.quantile(0.0), Some(0));
        assert_eq!(h.quantile(1.0), Some(15));
    }

    #[test]
    fn bounded_relative_error() {
        let mut h = LogHist::new(64);
        for v in [100u64, 1_000, 10_000, 1_000_000, 123_456_789] {
            let mut h1 = LogHist::new(64);
            h1.record(v);
            let got = h1.quantile(0.5).unwrap();
            let err = (got as f64 - v as f64).abs() / v as f64;
            assert!(err <= 1.0 / 64.0 + 1e-9, "v={v} got={got} err={err}");
            h.record(v);
        }
        assert_eq!(h.len(), 5);
        assert_eq!(h.summary().count, 5);
    }

    #[test]
    fn empty_summary_is_zeroed() {
        let h = LogHist::new(16);
        let s = h.summary();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(h.quantile(0.5), None);
    }

    #[test]
    fn merge_equals_direct_recording() {
        let mut a = LogHist::new(64);
        let mut b = LogHist::new(64);
        let mut direct = LogHist::new(64);
        for v in [3u64, 17, 900, 4096, 77_000_000] {
            a.record(v);
            direct.record(v);
        }
        for v in [5u64, 250, 250, 1_000_000] {
            b.record(v);
            direct.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), direct.len());
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(a.quantile(q), direct.quantile(q), "q={q}");
        }
        let (sa, sd) = (a.summary(), direct.summary());
        assert_eq!(sa.min, sd.min);
        assert_eq!(sa.max, sd.max);
        assert!((sa.mean - sd.mean).abs() < 1e-9);
    }

    #[test]
    fn rank_walk_matches_quantile_convention() {
        let mut h = LogHist::new(16);
        for v in 0..10 {
            h.record(v);
        }
        assert_eq!(h.value_at_rank(0), None);
        assert_eq!(h.value_at_rank(11), None);
        assert_eq!(h.value_at_rank(1), Some(0));
        assert_eq!(h.value_at_rank(10), Some(9));
        // quantile(q) is value_at_rank(ceil(q*n)) by construction.
        assert_eq!(h.quantile(0.5), h.value_at_rank(5));
    }

    #[test]
    fn mean_and_minmax() {
        let mut h = LogHist::new(16);
        h.record(10);
        h.record(30);
        let s = h.summary();
        assert_eq!(s.min, 10);
        assert_eq!(s.max, 30);
        assert!((s.mean - 20.0).abs() < 1e-12);
    }
}
