//! Operating a datacenter with corrupting links (§3.6, §4.8): CorrOpt
//! schedules repairs within the capacity constraint; LinkGuardian masks
//! the links that cannot be disabled.
//!
//! Run: `cargo run --release --example fabric_maintenance`

use lg_fabric::{run, FabricSimConfig, Policy};

fn main() {
    let constraint = 0.75;
    println!("Facebook-fabric pod network, 30 pods (11,520 optical links), 90 days,");
    println!(
        "capacity constraint {:.0}% — CorrOpt alone vs LinkGuardian + CorrOpt\n",
        constraint * 100.0
    );

    let mk = |policy| FabricSimConfig {
        pods: 30,
        horizon_hours: 24.0 * 90.0,
        constraint,
        policy,
        sample_interval_hours: 6.0,
        target_loss_rate: 1e-8,
        seed: 2024,
    };
    let co = run(&mk(Policy::CorrOptOnly));
    let lg = run(&mk(Policy::LgPlusCorrOpt));

    let mean = |r: &lg_fabric::FabricSimResult, f: fn(&lg_fabric::SamplePoint) -> f64| {
        r.samples.iter().map(f).sum::<f64>() / r.samples.len() as f64
    };
    println!("                         CorrOpt        LinkGuardian+CorrOpt");
    println!(
        "corruption events   {:>12} {:>22}",
        co.counts.corruption_events, lg.counts.corruption_events
    );
    println!(
        "deferred (can't     {:>12} {:>22}",
        co.counts.deferred, lg.counts.deferred
    );
    println!("  disable safely)");
    println!(
        "mean total penalty  {:>12.3e} {:>22.3e}",
        mean(&co, |s| s.total_penalty),
        mean(&lg, |s| s.total_penalty)
    );
    println!(
        "mean least capacity {:>11.3}% {:>21.3}%",
        mean(&co, |s| s.least_capacity) * 100.0,
        mean(&lg, |s| s.least_capacity) * 100.0
    );
    let gain = mean(&co, |s| s.total_penalty) / mean(&lg, |s| s.total_penalty).max(1e-300);
    println!("\npenalty reduction from adding LinkGuardian: {gain:.2e}x");
    println!(
        "peak concurrently-protected links per fabric switch: {}",
        lg.counts.peak_lg_per_fabric_switch
    );
    println!("\nthe joint strategy masks the deferred links' corruption (orders of");
    println!("magnitude lower penalty) at a fraction-of-a-percent capacity cost.");
}
