//! Table 2: contribution of LinkGuardian's mechanisms — top-1% FCT for
//! 24,387 B DCTCP flows with (ReTx), (ReTx+Order), (ReTx+Tail) and
//! (ReTx+Tail+Order = full LinkGuardian).
//!
//! Usage: `cargo run --release -p lg-bench --bin table2_ablation
//! [--trials 20000] [--threads N]`
//!
//! The six ablation rows run in parallel; output is identical at any
//! `--threads` value.

use lg_bench::{arg, banner, sweep};
use lg_link::{LinkSpeed, LossModel};
use lg_testbed::{fct_experiment, FctTransport, Protection};
use lg_transport::CcVariant;

fn main() {
    let _obs = lg_bench::obs::session("table2_ablation");
    banner(
        "Table 2",
        "top 1% FCT (us) for 24,387B DCTCP flows per LinkGuardian mechanism",
    );
    let trials: u32 = arg("--trials", 20_000u32);
    let seed: u64 = arg("--seed", 2);
    let speed = LinkSpeed::G100;
    let loss = LossModel::Iid { rate: 1e-3 };

    let configs: [(&str, LossModel, Protection); 6] = [
        ("No Loss", LossModel::None, Protection::Off),
        ("Loss (1e-3)", loss.clone(), Protection::Off),
        (
            "ReTx",
            loss.clone(),
            Protection::Ablation {
                tail: false,
                order: false,
            },
        ),
        (
            "ReTx+Order",
            loss.clone(),
            Protection::Ablation {
                tail: false,
                order: true,
            },
        ),
        (
            "ReTx+Tail",
            loss.clone(),
            Protection::Ablation {
                tail: true,
                order: false,
            },
        ),
        (
            "ReTx+Tail+Order",
            loss.clone(),
            Protection::Ablation {
                tail: true,
                order: true,
            },
        ),
    ];

    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "variant", "99.00%", "99.90%", "99.99%", "99.999%", "std dev"
    );
    let results = sweep::run(&configs, |(_, lm, prot)| {
        fct_experiment(
            speed,
            lm.clone(),
            *prot,
            FctTransport::Tcp(CcVariant::Dctcp),
            24_387,
            trials,
            seed,
        )
    });
    for ((label, _, _), r) in configs.iter().zip(&results) {
        println!(
            "{:<18} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>10.2}",
            label,
            r.report.p99_us,
            r.report.p999_us,
            r.report.p9999_us,
            r.report.p99999_us,
            r.report.std_dev_us
        );
    }
    println!();
    println!("paper (Table 2): ReTx alone fixes p99.9 but leaves a p99.99 RTO tail;");
    println!("  +Tail removes the tail at all percentiles; +Order adds ~33% at p99.99+.");
}
