//! Extension study (paper §5 "Incremental Deployment", left as future
//! work there): total-penalty reduction as a function of the fraction of
//! LinkGuardian-capable links, on the fabric maintenance simulation.
//!
//! Usage: `cargo run --release -p lg-bench --bin ext_partial_deployment
//! [--pods 60] [--days 60]`

use lg_bench::{arg, banner};
use lg_fabric::{run, FabricSimConfig, Policy};

fn main() {
    let _obs = lg_bench::obs::session("ext_partial_deployment");
    banner(
        "Extension: incremental deployment",
        "penalty vs fraction of LinkGuardian-capable links (75% constraint)",
    );
    let pods: u32 = arg("--pods", 60u32);
    let days: f64 = arg("--days", 60.0);
    let seed: u64 = arg("--seed", 55);
    let mk = |policy| FabricSimConfig {
        pods,
        horizon_hours: days * 24.0,
        constraint: 0.75,
        policy,
        sample_interval_hours: 6.0,
        target_loss_rate: 1e-8,
        seed,
    };
    let mean = |r: &lg_fabric::FabricSimResult| {
        r.samples.iter().map(|s| s.total_penalty).sum::<f64>() / r.samples.len() as f64
    };
    let base = mean(&run(&mk(Policy::CorrOptOnly)));
    println!(
        "{:>12} {:>16} {:>12}",
        "deployed", "mean penalty", "gain (x)"
    );
    println!("{:>11}% {:>16.3e} {:>12.1}", 0, base, 1.0);
    for f in [0.1, 0.25, 0.5, 0.75, 0.9, 1.0] {
        let p = mean(&run(&mk(Policy::PartialLg(f))));
        println!(
            "{:>11.0}% {:>16.3e} {:>12.1e}",
            f * 100.0,
            p,
            base / p.max(1e-300)
        );
    }
    println!();
    println!("takeaway: the penalty is dominated by the worst unprotected corrupting");
    println!("link, so the gain stays modest until coverage is nearly complete —");
    println!("supporting the paper's advice to prioritize links that cannot be");
    println!("disabled under the capacity constraint.");
}
