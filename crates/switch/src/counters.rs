//! Per-port MAC counters, matching what `corruptd` polls from the switch
//! driver (Appendix C): `framesRxOk` and `framesRxAll`, plus TX counters
//! used by the experiment harnesses to measure rates and loss.

use serde::{Deserialize, Serialize};

/// Port statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortCounters {
    /// Frames received with a good FCS.
    pub frames_rx_ok: u64,
    /// All frames that arrived at the MAC, including corrupted ones.
    pub frames_rx_all: u64,
    /// Frames transmitted.
    pub frames_tx: u64,
    /// Payload-carrying frame bytes transmitted (frame lengths).
    pub bytes_tx: u64,
    /// Frame bytes received OK.
    pub bytes_rx_ok: u64,
}

impl PortCounters {
    /// Record a good reception.
    pub fn rx_ok(&mut self, frame_len: u32) {
        self.frames_rx_all += 1;
        self.frames_rx_ok += 1;
        self.bytes_rx_ok += frame_len as u64;
    }

    /// Record a corrupted reception (FCS failure — frame dropped by MAC).
    pub fn rx_corrupt(&mut self) {
        self.frames_rx_all += 1;
    }

    /// Record a transmission.
    pub fn tx(&mut self, frame_len: u32) {
        self.frames_tx += 1;
        self.bytes_tx += frame_len as u64;
    }

    /// The loss rate observed between two snapshots: corrupted / all.
    pub fn loss_rate_since(&self, earlier: &PortCounters) -> f64 {
        let all = self.frames_rx_all - earlier.frames_rx_all;
        let ok = self.frames_rx_ok - earlier.frames_rx_ok;
        if all == 0 {
            0.0
        } else {
            (all - ok) as f64 / all as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let mut c = PortCounters::default();
        c.rx_ok(100);
        c.rx_ok(200);
        c.rx_corrupt();
        c.tx(300);
        assert_eq!(c.frames_rx_all, 3);
        assert_eq!(c.frames_rx_ok, 2);
        assert_eq!(c.bytes_rx_ok, 300);
        assert_eq!(c.frames_tx, 1);
        assert_eq!(c.bytes_tx, 300);
    }

    #[test]
    fn windowed_loss_rate() {
        let mut c = PortCounters::default();
        for _ in 0..90 {
            c.rx_ok(100);
        }
        for _ in 0..10 {
            c.rx_corrupt();
        }
        let snapshot = c;
        assert!((c.loss_rate_since(&PortCounters::default()) - 0.1).abs() < 1e-12);
        // a new clean window reads zero loss
        for _ in 0..100 {
            c.rx_ok(100);
        }
        assert_eq!(c.loss_rate_since(&snapshot), 0.0);
    }

    #[test]
    fn empty_window_is_zero() {
        let c = PortCounters::default();
        assert_eq!(c.loss_rate_since(&c), 0.0);
    }
}
