//! Parallel sweep driver for the experiment binaries.
//!
//! Every figure/table binary is a *sweep*: an ordered list of
//! independent points (speed × loss-rate × protection combinations,
//! ablation rows, fabric-policy runs), each fully determined by its
//! parameters and its own seed. [`run`] computes the points in parallel
//! with [`lg_sim::par_map`] and hands results back in input order, so a
//! binary's stdout is byte-identical at any `--threads` value — the
//! thread count only changes how long you wait.
//!
//! Compute first, print after: binaries build the full point list,
//! sweep it, then render rows serially from the returned `Vec`.

/// Worker threads for sweeps: `--threads N` if given, else all
/// available cores.
///
/// `--threads 1` gives the exact serial behavior (no worker pool).
pub fn threads() -> usize {
    crate::arg("--threads", default_threads()).max(1)
}

/// The default worker count (the machine's available parallelism).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Evaluate `f` over all sweep `points` on [`threads`] workers,
/// returning results in input order.
pub fn run<P, R, F>(points: &[P], f: F) -> Vec<R>
where
    P: Sync,
    R: Send,
    F: Fn(&P) -> R + Sync,
{
    lg_sim::par_map(points, threads(), |_, p| f(p))
}

#[cfg(test)]
mod tests {
    #[test]
    fn sweep_preserves_point_order() {
        let points: Vec<u32> = (0..50).collect();
        let out = super::run(&points, |&p| p * 2);
        assert_eq!(out, points.iter().map(|p| p * 2).collect::<Vec<_>>());
    }
}
