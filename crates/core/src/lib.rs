//! `linkguardian` — the paper's primary contribution: link-local
//! retransmission that masks corruption packet losses at sub-RTT
//! timescales (Joshi et al., ACM SIGCOMM 2023).
//!
//! The protocol runs per link between a **sender switch** and a
//! **receiver switch** (Figure 5):
//!
//! * the sender stamps protected packets with a 3-byte header
//!   (16-bit seqNo + era + type), buffers copies in a recirculation Tx
//!   buffer, and retransmits `N` copies (Eq. 2) through a high-priority
//!   queue upon a loss notification — see [`sender::LgSender`];
//! * the receiver detects losses from sequence gaps, notifies the sender,
//!   preserves ordering with a reordering buffer (Algorithm 1), throttles
//!   the sender with pause/resume backpressure (Algorithm 2), and bounds
//!   stalls with the ackNoTimeout — see [`receiver::LgReceiver`];
//! * self-replenishing queues of **dummy** packets (sender) and
//!   **explicit ACK** packets (receiver) ride strictly-lowest priority so
//!   tail losses are detected and ACKs delivered without timeouts even on
//!   an otherwise idle link (§3.1–3.2);
//! * [`corruptd`] is the control-plane monitor that activates the whole
//!   machinery when a link starts corrupting (Appendix C).
//!
//! `LinkGuardianNB` — the out-of-order variant evaluated throughout §4 —
//! is [`config::Mode::NonBlocking`].

pub mod config;
pub mod corruptd;
pub mod eq;
pub mod fallback;
pub mod receiver;
pub mod sender;
pub mod seqmap;

pub use config::{LgConfig, Mechanisms, Mode};
pub use corruptd::{Corruptd, CorruptionBus, CorruptionNotice};
pub use eq::{effective_loss_rate, retx_copies};
pub use fallback::{FallbackController, FallbackDecision, FallbackPolicy, ProtectionLevel};
pub use receiver::{LgReceiver, ReceiverAction, ReceiverStats};
pub use sender::{LgSender, SenderAction, SenderStats};
