//! A multi-hop testbed: a chain of switches with *multiple corrupting
//! links on one path* (paper §5 "Multiple corrupting links on a path").
//!
//! ```text
//!  host0 ──► sw0 ══link0══► sw1 ══link1══► ... ══► swN-1 ──► host1
//! ```
//!
//! Each switch-to-switch link direction can corrupt independently, and
//! each link can carry its own LinkGuardian instance (sender on the
//! upstream switch, receiver on the downstream one) — LinkGuardian
//! "naturally handles such a scenario since it operates on each link
//! independently" (§5). The paper could not evaluate this for lack of
//! optical hardware; here we can.
//!
//! This module reuses every state machine from the two-switch
//! [`crate::world`] but generalizes the event loop to `N` hops. Only the
//! forward direction is protected (like the main testbed); reverse
//! traffic carries ACKs and LinkGuardian control.

use lg_link::{LinkConfig, LinkDirection, LinkSpeed, LossModel};
use lg_packet::{FlowId, NodeId, Packet, PacketPool, Payload, PktId};
use lg_sim::{Duration, EventQueue, Rng, Time};
use lg_switch::{Class, PortId, Switch};
use lg_transport::{
    CcVariant, RdmaConfig, RdmaRequester, RdmaResponder, TcpConfig, TcpReceiver, TcpSender,
    TransportAction,
};
use lg_workload::FctCollector;
use linkguardian::{LgConfig, LgReceiver, LgSender, ReceiverAction, SenderAction};

/// Toward host0 (decreasing switch index).
pub const PORT_LEFT: PortId = 0;
/// Toward host1 (increasing switch index).
pub const PORT_RIGHT: PortId = 1;

/// Host addresses.
pub const C_HOST0: NodeId = NodeId(0);
/// Receiver-side host.
pub const C_HOST1: NodeId = NodeId(1);

/// Events of the chain world. Packet-carrying variants hold [`PktId`]
/// pool handles, mirroring [`crate::world::Ev`].
#[derive(Debug)]
pub enum CEv {
    /// Enqueue on switch `sw`'s `port` in `class` (post-pipeline).
    PortEnqueue {
        /// Switch index.
        sw: usize,
        /// Egress port.
        port: PortId,
        /// Class.
        class: Class,
        /// Packet.
        id: PktId,
    },
    /// A frame finished serializing out of `sw`'s `port`.
    PortTxDone {
        /// Switch index.
        sw: usize,
        /// Egress port.
        port: PortId,
        /// The frame.
        id: PktId,
    },
    /// A frame arrived at switch `sw` over the link on its `from_right`
    /// side (false = from the left neighbour).
    WireArrive {
        /// Switch index.
        sw: usize,
        /// True when the frame came from the right-hand link.
        from_right: bool,
        /// The frame.
        id: PktId,
    },
    /// A frame arrived at a host.
    HostArrive {
        /// 0 or 1.
        host: usize,
        /// The frame.
        id: PktId,
    },
    /// Host NIC finished serializing.
    HostTxDone {
        /// 0 or 1.
        host: usize,
    },
    /// Transport timer.
    HostWake {
        /// 0 or 1.
        host: usize,
    },
    /// LinkGuardian receiver ackNoTimeout on hop `hop`.
    LgTimeout {
        /// Protected hop index.
        hop: usize,
        /// Stall generation.
        generation: u64,
    },
    /// Backpressure timer-packet evaluation on hop `hop`.
    LgBpTimer {
        /// Protected hop index.
        hop: usize,
    },
    /// PFC pause/resume applies at hop `hop`'s sender queue.
    PauseApply {
        /// Protected hop index.
        hop: usize,
        /// Pause or resume.
        pause: bool,
    },
    /// Dummy keepalive for hop `hop`.
    DummyRefresh {
        /// Protected hop index.
        hop: usize,
    },
    /// Start the next trial.
    TrialStart,
}

/// One protected hop: LinkGuardian pair guarding `links[hop]`'s forward
/// direction (sender on switch `hop`, receiver on switch `hop + 1`).
struct Hop {
    lg_tx: LgSender,
    lg_rx: LgReceiver,
    dummy_refresh_armed: bool,
}

/// Traffic driver for the chain.
#[derive(Debug, Clone)]
pub enum ChainApp {
    /// Serial TCP messages host0 → host1.
    TcpTrials {
        /// CC variant.
        variant: CcVariant,
        /// Message bytes.
        msg_len: u32,
        /// Trials.
        trials: u32,
    },
    /// Serial RDMA WRITEs host0 → host1.
    RdmaTrials {
        /// Message bytes.
        msg_len: u32,
        /// Trials.
        trials: u32,
    },
}

/// Chain configuration.
pub struct ChainConfig {
    /// Link speed everywhere.
    pub speed: LinkSpeed,
    /// Per-hop forward-direction loss models (length = switches − 1).
    pub losses: Vec<LossModel>,
    /// Which hops get a LinkGuardian pair (same length).
    pub protected: Vec<bool>,
    /// Host stack delay (7 µs ⇒ ~30 µs RTT on a 2-switch path; each
    /// extra hop adds ~2×(serialization + pipeline)).
    pub host_stack_delay: Duration,
    /// Traffic.
    pub app: ChainApp,
    /// Seed.
    pub seed: u64,
}

impl ChainConfig {
    /// A chain with the given per-hop loss models, all protected.
    pub fn protected_chain(speed: LinkSpeed, losses: Vec<LossModel>, app: ChainApp) -> ChainConfig {
        let n = losses.len();
        ChainConfig {
            speed,
            losses,
            protected: vec![true; n],
            host_stack_delay: Duration::from_us(7),
            app,
            seed: 1,
        }
    }
}

/// Host endpoint state (chain flavour).
struct CHost {
    nic_queue: std::collections::VecDeque<PktId>,
    busy: bool,
    tcp_tx: Option<TcpSender>,
    // Finished sender kept for recycling via TcpSender::renew.
    tcp_spent: Option<TcpSender>,
    tcp_rx: Option<TcpReceiver>,
    rdma_tx: Option<RdmaRequester>,
    rdma_rx: Option<RdmaResponder>,
}

/// The multi-hop world.
pub struct ChainWorld {
    cfg: ChainConfig,
    /// Event queue.
    pub q: EventQueue<CEv>,
    switches: Vec<Switch>,
    /// links[i].0 = forward (sw i → sw i+1), links[i].1 = reverse.
    links: Vec<(LinkDirection, LinkDirection)>,
    hops: Vec<Option<Hop>>,
    hosts: [CHost; 2],
    /// Completed-flow FCTs.
    pub fct: FctCollector,
    /// Transport retransmissions observed.
    pub e2e_retx: u64,
    /// Slab pool backing every in-flight packet of the chain.
    pub pool: PacketPool,
    trials_remaining: u32,
    next_flow: u64,
    rx_scratch: Vec<ReceiverAction>,
    tx_scratch: Vec<SenderAction>,
    filler_scratch: Vec<PktId>,
    transport_scratch: Vec<TransportAction>,
}

impl ChainWorld {
    /// Build a chain of `losses.len() + 1` switches.
    pub fn new(cfg: ChainConfig) -> ChainWorld {
        let n_links = cfg.losses.len();
        assert!(n_links >= 1);
        assert_eq!(cfg.protected.len(), n_links);
        let n_sw = n_links + 1;
        let mut rng = Rng::new(cfg.seed);
        let link_cfg = LinkConfig::new(cfg.speed);

        let mut switches = Vec::with_capacity(n_sw);
        for i in 0..n_sw {
            let mut sw = Switch::new(format!("sw{i}"), 2);
            sw.add_route(C_HOST1, PORT_RIGHT);
            sw.add_route(C_HOST0, PORT_LEFT);
            switches.push(sw);
        }
        let links: Vec<(LinkDirection, LinkDirection)> = cfg
            .losses
            .iter()
            .map(|m| {
                (
                    LinkDirection::corrupting(link_cfg, m.clone(), rng.fork()),
                    LinkDirection::healthy(link_cfg, rng.fork()),
                )
            })
            .collect();
        let hops: Vec<Option<Hop>> = (0..n_links)
            .map(|i| {
                if !cfg.protected[i] {
                    return None;
                }
                let actual = cfg.losses[i].mean_rate().max(1e-9);
                let lg_cfg = LgConfig::for_speed(cfg.speed, actual);
                // distinct synthetic addresses per hop
                let a = NodeId(100 + 2 * i as u32);
                let b = NodeId(101 + 2 * i as u32);
                let mut lg_tx = LgSender::new(lg_cfg.clone(), a, b);
                let mut lg_rx = LgReceiver::new(lg_cfg, b, a);
                lg_tx.activate(actual);
                lg_rx.activate();
                Some(Hop {
                    lg_tx,
                    lg_rx,
                    dummy_refresh_armed: false,
                })
            })
            .collect();

        let mut q = EventQueue::new();
        q.schedule_at(Time::ZERO, CEv::TrialStart);
        let trials_remaining = match cfg.app {
            ChainApp::TcpTrials { trials, .. } | ChainApp::RdmaTrials { trials, .. } => trials,
        };
        ChainWorld {
            cfg,
            q,
            switches,
            links,
            hops,
            hosts: [
                CHost {
                    nic_queue: Default::default(),
                    busy: false,
                    tcp_tx: None,
                    tcp_spent: None,
                    tcp_rx: None,
                    rdma_tx: None,
                    rdma_rx: None,
                },
                CHost {
                    nic_queue: Default::default(),
                    busy: false,
                    tcp_tx: None,
                    tcp_spent: None,
                    tcp_rx: None,
                    rdma_tx: None,
                    rdma_rx: None,
                },
            ],
            fct: FctCollector::new(),
            e2e_retx: 0,
            pool: PacketPool::new(),
            trials_remaining,
            next_flow: 1,
            rx_scratch: Vec::new(),
            tx_scratch: Vec::new(),
            filler_scratch: Vec::new(),
            transport_scratch: Vec::new(),
        }
    }

    /// Number of switches.
    pub fn n_switches(&self) -> usize {
        self.switches.len()
    }

    /// Sum of LinkGuardian recoveries across hops.
    pub fn total_recovered(&self) -> u64 {
        self.hops
            .iter()
            .flatten()
            .map(|h| h.lg_rx.stats().recovered)
            .sum()
    }

    /// Sum of receiver timeouts across hops.
    pub fn total_lg_timeouts(&self) -> u64 {
        self.hops
            .iter()
            .flatten()
            .map(|h| h.lg_rx.stats().timeouts)
            .sum()
    }

    /// Earliest pending timestamp, or `None` when the chain is idle.
    /// This is the probe the shard runner uses to open windows.
    pub fn next_event_time(&mut self) -> Option<Time> {
        self.q.peek_time()
    }

    /// Run every event due at or before `until`, returning the number
    /// dispatched. Dispatch is batched per tick (same delivery order as
    /// a `pop` loop; see `World::run_until`). Window-sliced execution
    /// is exact: a chain run as a sequence of bounded `run_until` calls
    /// dispatches the identical event stream as one unbounded call,
    /// which is what lets a chain instance live inside a shard.
    pub fn run_until(&mut self, until: Time) -> u64 {
        let mut ran = 0u64;
        let mut batch = Vec::new();
        while let Some((now, ev)) = self.q.pop_tick_into(until, &mut batch, 64) {
            ran += 1 + batch.len() as u64;
            self.handle(ev, now);
            for ev in batch.drain(..) {
                self.handle(ev, now);
            }
        }
        ran
    }

    /// Run until no events remain.
    pub fn run_to_completion(&mut self) {
        self.run_until(Time::MAX);
    }

    fn handle(&mut self, ev: CEv, now: Time) {
        match ev {
            CEv::PortEnqueue {
                sw,
                port,
                class,
                id,
            } => {
                self.switches[sw].enqueue(port, class, id, &mut self.pool);
                self.kick_port(sw, port);
            }
            CEv::PortTxDone { sw, port, id } => {
                let flen = self.pool.get(id).frame_len();
                self.switches[sw].port_mut(port).busy = false;
                self.switches[sw].tx_complete(port, flen);
                self.deliver_from_port(sw, port, id);
                self.kick_port(sw, port);
            }
            CEv::WireArrive { sw, from_right, id } => self.on_wire_arrive(sw, from_right, id, now),
            CEv::HostArrive { host, id } => self.on_host_arrive(host, id, now),
            CEv::HostTxDone { host } => {
                self.hosts[host].busy = false;
                self.kick_host(host);
            }
            CEv::HostWake { host } => {
                let mut actions = std::mem::take(&mut self.transport_scratch);
                if let Some(t) = self.hosts[host].tcp_tx.as_mut() {
                    t.on_timer_into(now, &mut actions);
                }
                if let Some(r) = self.hosts[host].rdma_tx.as_mut() {
                    r.on_timer_into(now, &mut actions);
                }
                self.apply_transport_actions(host, &mut actions, now);
                self.transport_scratch = actions;
            }
            CEv::LgTimeout { hop, generation } => {
                let mut actions = std::mem::take(&mut self.rx_scratch);
                if let Some(h) = self.hops[hop].as_mut() {
                    h.lg_rx
                        .on_timeout(generation, now, &mut self.pool, &mut actions);
                }
                self.apply_receiver_actions(hop, &actions, now);
                actions.clear();
                self.rx_scratch = actions;
            }
            CEv::LgBpTimer { hop } => {
                let mut actions = std::mem::take(&mut self.rx_scratch);
                if let Some(h) = self.hops[hop].as_mut() {
                    h.lg_rx.on_bp_timer(now, &mut self.pool, &mut actions);
                }
                self.apply_receiver_actions(hop, &actions, now);
                actions.clear();
                self.rx_scratch = actions;
            }
            CEv::PauseApply { hop, pause } => {
                self.switches[hop]
                    .port_mut(PORT_RIGHT)
                    .set_paused(Class::Normal, pause);
                self.kick_port(hop, PORT_RIGHT);
            }
            CEv::DummyRefresh { hop } => {
                if let Some(h) = self.hops[hop].as_mut() {
                    h.dummy_refresh_armed = false;
                }
                self.kick_port(hop, PORT_RIGHT);
            }
            CEv::TrialStart => self.start_trial(now),
        }
    }

    /// The protected hop whose sender sits on (sw, PORT_RIGHT), if any.
    fn hop_for_tx(&self, sw: usize, port: PortId) -> Option<usize> {
        (port == PORT_RIGHT && sw < self.hops.len() && self.hops[sw].is_some()).then_some(sw)
    }

    /// The protected hop whose receiver piggybacks ACKs on (sw, PORT_LEFT):
    /// hop `sw - 1` (reverse traffic toward that hop's sender).
    fn hop_for_rx_egress(&self, sw: usize, port: PortId) -> Option<usize> {
        if port != PORT_LEFT || sw == 0 {
            return None;
        }
        let hop = sw - 1;
        self.hops[hop].is_some().then_some(hop)
    }

    fn kick_port(&mut self, sw: usize, port: PortId) {
        let now = self.q.now();
        if self.switches[sw].port(port).busy {
            return;
        }
        let mut next = self.switches[sw].dequeue(port);
        if next.is_none() {
            // idle fillers
            if let Some(hop) = self.hop_for_tx(sw, port) {
                let mut filler = std::mem::take(&mut self.filler_scratch);
                let h = self.hops[hop].as_mut().expect("protected");
                h.lg_tx.make_dummies(now, &mut self.pool, &mut filler);
                let got = !filler.is_empty();
                for d in filler.drain(..) {
                    self.switches[sw].enqueue(port, Class::Low, d, &mut self.pool);
                }
                self.filler_scratch = filler;
                let h = self.hops[hop].as_mut().expect("protected");
                if h.lg_tx.has_unacked()
                    && h.lg_tx.config().dummy_copies > 0
                    && !h.dummy_refresh_armed
                {
                    h.dummy_refresh_armed = true;
                    self.q
                        .schedule_after(Duration::from_ns(400), CEv::DummyRefresh { hop });
                }
                if got {
                    next = self.switches[sw].dequeue(port);
                }
            } else if let Some(hop) = self.hop_for_rx_egress(sw, port) {
                let mut filler = std::mem::take(&mut self.filler_scratch);
                let h = self.hops[hop].as_mut().expect("protected");
                h.lg_rx.make_explicit_acks(now, &mut self.pool, &mut filler);
                let got = !filler.is_empty();
                for a in filler.drain(..) {
                    self.switches[sw].enqueue(port, Class::Low, a, &mut self.pool);
                }
                self.filler_scratch = filler;
                if got {
                    next = self.switches[sw].dequeue(port);
                }
            }
        }
        let Some((_class, mut id)) = next else {
            return;
        };
        if let Some(hop) = self.hop_for_tx(sw, port) {
            id = self.hops[hop]
                .as_mut()
                .expect("protected")
                .lg_tx
                .on_transmit(id, now, &mut self.pool);
        } else if let Some(hop) = self.hop_for_rx_egress(sw, port) {
            if self.pool.get(id).lg_ack.is_none() {
                id = self.hops[hop]
                    .as_mut()
                    .expect("protected")
                    .lg_rx
                    .stamp_ack(id, &mut self.pool);
            }
        }
        self.switches[sw].port_mut(port).busy = true;
        let ser = self.cfg.speed.serialize(self.pool.get(id).wire_len());
        self.q.schedule_after(ser, CEv::PortTxDone { sw, port, id });
    }

    fn deliver_from_port(&mut self, sw: usize, port: PortId, id: PktId) {
        let n_sw = self.switches.len();
        match port {
            PORT_RIGHT if sw + 1 < n_sw => {
                // forward link sw → sw+1
                let (fwd, _) = &mut self.links[sw];
                let prop = fwd.propagation();
                if fwd.deliver() {
                    self.q.schedule_after(
                        prop,
                        CEv::WireArrive {
                            sw: sw + 1,
                            from_right: false,
                            id,
                        },
                    );
                } else {
                    self.switches[sw + 1].rx_corrupt(PORT_LEFT);
                    self.pool.release(id);
                }
            }
            PORT_LEFT if sw > 0 => {
                let (_, rev) = &mut self.links[sw - 1];
                let prop = rev.propagation();
                if rev.deliver() {
                    self.q.schedule_after(
                        prop,
                        CEv::WireArrive {
                            sw: sw - 1,
                            from_right: true,
                            id,
                        },
                    );
                } else {
                    self.switches[sw - 1].rx_corrupt(PORT_RIGHT);
                    self.pool.release(id);
                }
            }
            PORT_RIGHT => {
                // rightmost switch → host1
                let delay = Duration::from_ns(100) + self.cfg.host_stack_delay;
                self.q
                    .schedule_after(delay, CEv::HostArrive { host: 1, id });
            }
            _ => {
                let delay = Duration::from_ns(100) + self.cfg.host_stack_delay;
                self.q
                    .schedule_after(delay, CEv::HostArrive { host: 0, id });
            }
        }
    }

    fn on_wire_arrive(&mut self, sw: usize, from_right: bool, id: PktId, now: Time) {
        let pipeline = self.switches[sw].pipeline_latency;
        let flen = self.pool.get(id).frame_len();
        if !from_right {
            // forward arrival over link (sw-1 → sw): hop sw-1's receiver
            self.switches[sw].rx_ok(PORT_LEFT, flen);
            let hop = sw - 1;
            if self.hops[hop].is_some() {
                let mut actions = std::mem::take(&mut self.rx_scratch);
                if let Some(h) = self.hops[hop].as_mut() {
                    h.lg_rx
                        .on_protected_rx(id, now, &mut self.pool, &mut actions);
                }
                self.apply_receiver_actions(hop, &actions, now);
                actions.clear();
                self.rx_scratch = actions;
            } else {
                // unprotected hop: plain forwarding
                self.q.schedule_after(
                    pipeline,
                    CEv::PortEnqueue {
                        sw,
                        port: PORT_RIGHT,
                        class: Class::Normal,
                        id,
                    },
                );
            }
        } else {
            // reverse arrival over link (sw+1 → sw): hop sw's sender
            self.switches[sw].rx_ok(PORT_RIGHT, flen);
            let hop = sw;
            if self.hops[hop].is_some() {
                let mut actions = std::mem::take(&mut self.tx_scratch);
                let fwd = self.hops[hop]
                    .as_mut()
                    .expect("protected")
                    .lg_tx
                    .on_reverse_rx(id, now, &mut self.pool, &mut actions);
                if let Some(p) = fwd {
                    self.q.schedule_after(
                        pipeline,
                        CEv::PortEnqueue {
                            sw,
                            port: PORT_LEFT,
                            class: Class::Normal,
                            id: p,
                        },
                    );
                }
                self.apply_sender_actions(hop, &actions);
                actions.clear();
                self.tx_scratch = actions;
            } else {
                self.q.schedule_after(
                    pipeline,
                    CEv::PortEnqueue {
                        sw,
                        port: PORT_LEFT,
                        class: Class::Normal,
                        id,
                    },
                );
            }
        }
    }

    fn apply_receiver_actions(&mut self, hop: usize, actions: &[ReceiverAction], _now: Time) {
        // the receiver of hop `hop` lives on switch hop+1
        let sw = hop + 1;
        let pipeline = self.switches[sw].pipeline_latency;
        for &a in actions {
            match a {
                ReceiverAction::Deliver(id) => {
                    self.q.schedule_after(
                        pipeline,
                        CEv::PortEnqueue {
                            sw,
                            port: PORT_RIGHT,
                            class: Class::Normal,
                            id,
                        },
                    );
                }
                ReceiverAction::SendReverse { id, class } => {
                    self.switches[sw].enqueue(PORT_LEFT, class, id, &mut self.pool);
                }
                ReceiverAction::ArmTimeout {
                    deadline,
                    generation,
                } => {
                    self.q.schedule_at(
                        deadline.max(self.q.now()),
                        CEv::LgTimeout { hop, generation },
                    );
                }
                ReceiverAction::ArmBpTimer { at } => {
                    self.q
                        .schedule_at(at.max(self.q.now()), CEv::LgBpTimer { hop });
                }
            }
        }
        self.kick_port(sw, PORT_LEFT);
    }

    fn apply_sender_actions(&mut self, hop: usize, actions: &[SenderAction]) {
        let sw = hop; // sender lives on switch `hop`
        let pipeline = self.switches[sw].pipeline_latency;
        for &a in actions {
            match a {
                SenderAction::Emit { id, class, delay } => {
                    self.q.schedule_after(
                        delay + pipeline,
                        CEv::PortEnqueue {
                            sw,
                            port: PORT_RIGHT,
                            class,
                            id,
                        },
                    );
                }
                SenderAction::PauseNormal(pause) => {
                    self.q
                        .schedule_after(Duration::from_ns(1_100), CEv::PauseApply { hop, pause });
                }
            }
        }
    }

    // ----------------------------------------------------------- hosts

    fn on_host_arrive(&mut self, host: usize, id: PktId, now: Time) {
        let mut actions = std::mem::take(&mut self.transport_scratch);
        let mut reply: Option<Packet> = None;
        {
            let pkt = self.pool.get(id);
            let h = &mut self.hosts[host];
            match &pkt.payload {
                Payload::Tcp(seg) => {
                    if seg.payload_len > 0 {
                        if let Some(rx) = h.tcp_rx.as_mut() {
                            if rx.flow() == seg.flow {
                                reply = Some(rx.on_data(seg, pkt.ecn, now));
                            }
                        }
                    } else if let Some(tx) = h.tcp_tx.as_mut() {
                        if tx.flow() == seg.flow {
                            tx.on_ack_into(seg, now, &mut actions);
                        }
                    }
                }
                Payload::Rdma(seg) => {
                    if let Some(rx) = h.rdma_rx.as_mut() {
                        if rx.flow() == seg.flow {
                            reply = rx.on_data(seg, now);
                        }
                    }
                }
                Payload::RdmaAck(ack) => {
                    if let Some(tx) = h.rdma_tx.as_mut() {
                        if tx.flow() == ack.flow {
                            tx.on_ack_into(ack, now, &mut actions);
                        }
                    }
                }
                _ => {}
            }
        }
        self.pool.release(id);
        if let Some(r) = reply {
            self.host_send(host, r);
        }
        self.apply_transport_actions(host, &mut actions, now);
        self.transport_scratch = actions;
    }

    fn apply_transport_actions(
        &mut self,
        host: usize,
        actions: &mut Vec<TransportAction>,
        now: Time,
    ) {
        for a in actions.drain(..) {
            match a {
                TransportAction::Send(pkt) => {
                    if let Payload::Tcp(t) = &pkt.payload {
                        if t.is_retx {
                            self.e2e_retx += 1;
                        }
                    }
                    self.host_send(host, pkt);
                }
                TransportAction::WakeAt { deadline } => {
                    self.q
                        .schedule_at(deadline.max(now), CEv::HostWake { host });
                }
                TransportAction::Complete {
                    started, completed, ..
                } => {
                    self.fct.record(completed.saturating_since(started));
                    self.finish_trial(host);
                }
            }
        }
    }

    fn host_send(&mut self, host: usize, pkt: Packet) {
        let id = self.pool.insert(pkt);
        self.hosts[host].nic_queue.push_back(id);
        self.kick_host(host);
    }

    fn kick_host(&mut self, host: usize) {
        if self.hosts[host].busy {
            return;
        }
        let Some(id) = self.hosts[host].nic_queue.pop_front() else {
            return;
        };
        self.hosts[host].busy = true;
        let ser = self.cfg.speed.serialize(self.pool.get(id).wire_len());
        let sw = if host == 0 {
            0
        } else {
            self.switches.len() - 1
        };
        let port = if host == 0 { PORT_RIGHT } else { PORT_LEFT };
        let arrive = self.cfg.host_stack_delay
            + ser
            + Duration::from_ns(100)
            + self.switches[sw].pipeline_latency;
        self.q.schedule_after(
            arrive,
            CEv::PortEnqueue {
                sw,
                port,
                class: Class::Normal,
                id,
            },
        );
        self.q.schedule_after(ser, CEv::HostTxDone { host });
    }

    fn start_trial(&mut self, now: Time) {
        if self.trials_remaining == 0 {
            return;
        }
        let flow = FlowId(self.next_flow);
        self.next_flow += 1;
        let mut actions = std::mem::take(&mut self.transport_scratch);
        match self.cfg.app.clone() {
            ChainApp::TcpTrials {
                variant, msg_len, ..
            } => {
                self.hosts[1].tcp_rx = Some(TcpReceiver::new(flow, C_HOST1, C_HOST0));
                let old = self.hosts[0]
                    .tcp_spent
                    .take()
                    .or_else(|| self.hosts[0].tcp_tx.take());
                let mut tx = TcpSender::renew(
                    old,
                    TcpConfig::default(),
                    variant,
                    flow,
                    C_HOST0,
                    C_HOST1,
                    msg_len,
                );
                tx.start_into(now, &mut actions);
                self.hosts[0].tcp_tx = Some(tx);
                self.apply_transport_actions(0, &mut actions, now);
            }
            ChainApp::RdmaTrials { msg_len, .. } => {
                self.hosts[1].rdma_rx = Some(RdmaResponder::new(flow, C_HOST1, C_HOST0, false));
                let mut tx =
                    RdmaRequester::new(RdmaConfig::default(), flow, C_HOST0, C_HOST1, msg_len);
                tx.start_into(now, &mut actions);
                self.hosts[0].rdma_tx = Some(tx);
                self.apply_transport_actions(0, &mut actions, now);
            }
        }
        self.transport_scratch = actions;
    }

    fn finish_trial(&mut self, host: usize) {
        self.hosts[host].tcp_spent = self.hosts[host].tcp_tx.take();
        self.hosts[host].rdma_tx = None;
        self.trials_remaining = self.trials_remaining.saturating_sub(1);
        if self.trials_remaining > 0 {
            let at = self.q.now() + Duration::from_us(10);
            self.q.schedule_at(at, CEv::TrialStart);
        }
    }
}
