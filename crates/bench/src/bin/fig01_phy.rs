//! Figure 1: packet loss rate vs optical attenuation for 10GBASE-SR,
//! 25GBASE-SR (with/without FEC) and 50GBASE-SR, 1518 B frames.
//!
//! Usage: `cargo run --release -p lg-bench --bin fig01_phy`

use lg_bench::banner;
use lg_link::Transceiver;

fn main() {
    let _obs = lg_bench::obs::session("fig01_phy");
    banner(
        "Figure 1",
        "effect of optical attenuation on various Ethernet link speeds (1518B frames)",
    );
    let transceivers = [
        Transceiver::base50g_sr_fec(),
        Transceiver::base25g_sr(),
        Transceiver::base25g_sr_fec(),
        Transceiver::base10g_sr(),
    ];
    print!("{:<8}", "dB");
    for t in &transceivers {
        print!("{:>20}", t.name);
    }
    println!();
    let mut atten = 9.0;
    while atten <= 18.0 + 1e-9 {
        print!("{atten:<8.1}");
        for t in &transceivers {
            let plr = t.packet_loss_rate(atten, 1518);
            if plr < 1e-12 {
                print!("{:>20}", "<1e-12");
            } else {
                print!("{plr:>20.3e}");
            }
        }
        println!();
        atten += 0.5;
    }
    println!();
    println!("paper: loss cliffs ordered 50G(FEC) < 25G < 25G(FEC) < 10G in dB;");
    println!("       higher baudrate and denser modulation fail at lower attenuation.");
}
