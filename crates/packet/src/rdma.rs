//! RoCEv2 (RDMA over Converged Ethernet v2) headers: the InfiniBand Base
//! Transport Header (BTH) and ACK Extended Transport Header (AETH).
//!
//! We model the subset needed for one-sided `RDMA_WRITE` over a reliable
//! connection (RC): WRITE first/middle/last/only opcodes, per-packet PSNs,
//! and ACK/NAK with the go-back-N "PSN sequence error" NAK that makes RDMA
//! reordering-intolerant (§1, §4.3 of the paper).

use crate::wire::{ParseError, Reader, Result, Writer};
use serde::{Deserialize, Serialize};

/// RC opcodes used by the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum RdmaOpcode {
    /// RC RDMA WRITE First.
    WriteFirst = 0x06,
    /// RC RDMA WRITE Middle.
    WriteMiddle = 0x07,
    /// RC RDMA WRITE Last.
    WriteLast = 0x08,
    /// RC RDMA WRITE Only (single-packet message).
    WriteOnly = 0x0A,
    /// RC Acknowledge (carries an AETH).
    Acknowledge = 0x11,
}

impl RdmaOpcode {
    fn from_u8(v: u8) -> Result<RdmaOpcode> {
        match v {
            0x06 => Ok(RdmaOpcode::WriteFirst),
            0x07 => Ok(RdmaOpcode::WriteMiddle),
            0x08 => Ok(RdmaOpcode::WriteLast),
            0x0A => Ok(RdmaOpcode::WriteOnly),
            0x11 => Ok(RdmaOpcode::Acknowledge),
            _ => Err(ParseError::Malformed),
        }
    }

    /// True for opcodes that carry message payload.
    pub fn is_write(self) -> bool {
        !matches!(self, RdmaOpcode::Acknowledge)
    }
}

/// Base Transport Header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bth {
    /// Operation code.
    pub opcode: RdmaOpcode,
    /// Destination queue pair (24-bit).
    pub dest_qp: u32,
    /// Packet sequence number (24-bit).
    pub psn: u32,
    /// Request an ACK for this packet.
    pub ack_req: bool,
}

/// PSNs are 24-bit and wrap.
pub const PSN_SPACE: u32 = 1 << 24;

/// Wrapping PSN comparison: is `a` strictly before `b` (within half-space)?
pub fn psn_before(a: u32, b: u32) -> bool {
    a != b && b.wrapping_sub(a) % PSN_SPACE < PSN_SPACE / 2
}

impl Bth {
    /// Serialized length.
    pub const LEN: usize = 12;

    /// Write into `buf` (at least 12 bytes).
    pub fn emit(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        w.u8(self.opcode as u8);
        w.u8(0); // SE/M/pad/TVer
        w.u16(0xFFFF); // partition key (default)
        w.u8(0); // reserved
        w.u24(self.dest_qp);
        w.u8((self.ack_req as u8) << 7);
        w.u24(self.psn);
    }

    /// Parse from `buf`.
    pub fn parse(buf: &[u8]) -> Result<Bth> {
        let mut r = Reader::new(buf);
        let opcode = RdmaOpcode::from_u8(r.u8()?)?;
        let _flags = r.u8()?;
        let _pkey = r.u16()?;
        let _rsvd = r.u8()?;
        let dest_qp = r.u24()?;
        let ack_req = r.u8()? & 0x80 != 0;
        let psn = r.u24()?;
        Ok(Bth {
            opcode,
            dest_qp,
            psn,
            ack_req,
        })
    }
}

/// AETH syndrome: ACK or the NAK codes the simulation uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AethSyndrome {
    /// Positive acknowledgment (cumulative up to the BTH PSN).
    Ack,
    /// NAK: PSN sequence error — the go-back-N trigger.
    NakSequenceError,
}

/// ACK Extended Transport Header, carried by [`RdmaOpcode::Acknowledge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Aeth {
    /// ACK or NAK kind.
    pub syndrome: AethSyndrome,
    /// Message sequence number (24-bit), informational in our model.
    pub msn: u32,
}

impl Aeth {
    /// Serialized length.
    pub const LEN: usize = 4;

    /// Write into `buf` (at least 4 bytes).
    pub fn emit(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        let syndrome_bits: u8 = match self.syndrome {
            // ACK with credit count 31 (unlimited in our model)
            AethSyndrome::Ack => 0b0001_1111,
            // NAK code 0 = PSN sequence error
            AethSyndrome::NakSequenceError => 0b0110_0000,
        };
        w.u8(syndrome_bits);
        w.u24(self.msn);
    }

    /// Parse from `buf`.
    pub fn parse(buf: &[u8]) -> Result<Aeth> {
        let mut r = Reader::new(buf);
        let s = r.u8()?;
        let msn = r.u24()?;
        let syndrome = match s >> 5 {
            0b000 => AethSyndrome::Ack,
            0b011 if s & 0x1F == 0 => AethSyndrome::NakSequenceError,
            _ => return Err(ParseError::Malformed),
        };
        Ok(Aeth { syndrome, msn })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bth_round_trip() {
        for opcode in [
            RdmaOpcode::WriteFirst,
            RdmaOpcode::WriteMiddle,
            RdmaOpcode::WriteLast,
            RdmaOpcode::WriteOnly,
            RdmaOpcode::Acknowledge,
        ] {
            let h = Bth {
                opcode,
                dest_qp: 0x00AB_CDEF,
                psn: 0x0012_3456,
                ack_req: true,
            };
            let mut buf = [0u8; Bth::LEN];
            h.emit(&mut buf);
            assert_eq!(Bth::parse(&buf).unwrap(), h);
        }
    }

    #[test]
    fn aeth_round_trip() {
        for syndrome in [AethSyndrome::Ack, AethSyndrome::NakSequenceError] {
            let h = Aeth { syndrome, msn: 42 };
            let mut buf = [0u8; Aeth::LEN];
            h.emit(&mut buf);
            assert_eq!(Aeth::parse(&buf).unwrap(), h);
        }
    }

    #[test]
    fn psn_wrapping_compare() {
        assert!(psn_before(0, 1));
        assert!(psn_before(PSN_SPACE - 1, 0));
        assert!(!psn_before(1, 0));
        assert!(!psn_before(5, 5));
    }

    #[test]
    fn unknown_opcode_rejected() {
        let mut buf = [0u8; Bth::LEN];
        Bth {
            opcode: RdmaOpcode::WriteOnly,
            dest_qp: 1,
            psn: 1,
            ack_req: false,
        }
        .emit(&mut buf);
        buf[0] = 0x42;
        assert_eq!(Bth::parse(&buf), Err(ParseError::Malformed));
    }

    #[test]
    fn write_opcodes_classified() {
        assert!(RdmaOpcode::WriteOnly.is_write());
        assert!(!RdmaOpcode::Acknowledge.is_write());
    }
}
