//! Figure 20 (Appendix B.2): distribution of the number of consecutive
//! packets lost at unreasonably high loss rates (1% and 5%).
//!
//! The paper measured this on real attenuated links and found that 5
//! consecutive losses cover 99.9999% of loss events even at 5%; this is
//! what sizes the 5 one-bit reTxReqs registers (§3.5). We reproduce the
//! run-length distribution under both i.i.d. and bursty (Gilbert–Elliott)
//! loss.
//!
//! Usage: `cargo run --release -p lg-bench --bin fig20_consecutive
//! [--frames 5000000]`

use lg_bench::{arg, banner};
use lg_link::loss::LossProcess;
use lg_link::{LossModel, RunLengthStats};
use lg_sim::Rng;

fn run(model: LossModel, frames: u64, seed: u64) -> Vec<u64> {
    let mut p = LossProcess::new(model, Rng::new(seed));
    let mut rl = RunLengthStats::new();
    for _ in 0..frames {
        rl.record(p.should_drop());
    }
    rl.finish()
}

fn main() {
    let _obs = lg_bench::obs::session("fig20_consecutive");
    banner(
        "Figure 20",
        "distribution of consecutive packets lost (1518B)",
    );
    let frames: u64 = arg("--frames", 5_000_000u64);
    println!("{:<28} {:>12} CDF by run length 1..7", "model", "bursts");
    for (name, model) in [
        ("iid 1%", LossModel::Iid { rate: 0.01 }),
        ("iid 5%", LossModel::Iid { rate: 0.05 }),
        ("bursty 1% (mean burst 1.5)", LossModel::bursty(0.01, 1.5)),
        ("bursty 5% (mean burst 1.5)", LossModel::bursty(0.05, 1.5)),
    ] {
        let counts = run(model, frames, 11);
        let cdf = RunLengthStats::cdf(&counts);
        let total: u64 = counts.iter().sum();
        print!("{name:<28} {total:>12} ");
        for k in 0..7 {
            let v = cdf.get(k).copied().unwrap_or(1.0);
            print!(" {v:>9.6}");
        }
        println!();
    }
    println!();
    println!("paper: >=99.9999% of loss events involve <=5 consecutive packets at 5% loss,");
    println!("       justifying the 5 one-bit reTxReqs registers.");
}
