//! Testbed worlds as shard citizens.
//!
//! A figure-7 testbed instance (a [`World`] or a multi-hop
//! [`ChainWorld`]) is a self-contained event loop: all of its traffic
//! stays inside the instance, so a *battery* of instances — a seed
//! sweep, a loss-rate grid — shards trivially: partition the instances,
//! give each shard one event queue per instance, and advance everything
//! in lockstep windows. No messages ever cross shards, but unlike
//! [`lg_sim::par_map`] fan-out the instances advance *together* through
//! simulated time, which is the execution shape the packet-level fabric
//! uses (and what its pod worlds will share a clock with); running the
//! testbed batteries through the same [`lg_sim::shard`] runner keeps
//! that machinery covered by the testbed's own regression suite.
//!
//! Window-sliced execution is exact because `run_until` dispatches the
//! identical event stream whether it is called once with `Time::MAX` or
//! repeatedly with window bounds — asserted by the round-trip tests
//! below.

use lg_sim::shard::{run_sharded, ShardMsg, ShardStats, ShardWorld};
use lg_sim::{Duration, Time};

use crate::chain::ChainWorld;
use crate::world::World;

/// Any testbed instance that can advance to a bound and report its next
/// pending timestamp.
pub trait WindowRunnable: Send {
    /// Run every event due at or before `until`; return how many ran.
    fn run_window(&mut self, until: Time) -> u64;
    /// Earliest pending timestamp, or `None` when idle.
    fn next_time(&mut self) -> Option<Time>;
}

impl WindowRunnable for ChainWorld {
    fn run_window(&mut self, until: Time) -> u64 {
        self.run_until(until)
    }
    fn next_time(&mut self) -> Option<Time> {
        self.next_event_time()
    }
}

impl WindowRunnable for World {
    fn run_window(&mut self, until: Time) -> u64 {
        // World::run_until does not count; the per-event cost of a
        // counting wrapper would land on the fig-binary hot path, so
        // count by queue-length delta instead (events dispatched =
        // drained minus still-pending is wrong under rescheduling;
        // windows only need a monotone progress signal, not an exact
        // census, and the exact count is owned by `world_guard`).
        let before = self.q.len() as u64;
        self.run_until(until);
        before.saturating_sub(self.q.len() as u64)
    }
    fn next_time(&mut self) -> Option<Time> {
        self.next_event_time()
    }
}

/// One shard of an instance battery: a disjoint set of instances,
/// remembered with their battery positions so results reassemble in
/// input order.
pub struct InstanceShard<W> {
    instances: Vec<(usize, W)>,
}

impl<W: WindowRunnable> ShardWorld for InstanceShard<W> {
    /// Instances are self-contained; the message type is uninhabited in
    /// spirit — `inject` is unreachable.
    type Msg = ();

    fn next_time(&mut self) -> Option<Time> {
        self.instances
            .iter_mut()
            .filter_map(|(_, w)| w.next_time())
            .min()
    }

    fn run_window(&mut self, until: Time, _out: &mut Vec<ShardMsg<()>>) -> u64 {
        self.instances
            .iter_mut()
            .map(|(_, w)| w.run_window(until))
            .sum()
    }

    fn inject(&mut self, _msg: ShardMsg<()>) {
        unreachable!("testbed instances exchange no cross-shard messages");
    }
}

/// Run a battery of instances to completion inside `shards` shards on
/// up to `threads` workers, returning them in input order (so callers
/// read FCTs/stats exactly as if each instance had run alone).
///
/// `window` is the synchronization quantum. Instances are independent,
/// so *any* positive window is safe — there is no lookahead constraint
/// to honor — but the window sets the scheduling granularity:
/// finer windows rebalance shards more often, coarser windows
/// synchronize less. Instances are dealt round-robin so a battery
/// sorted by difficulty still balances.
pub fn run_battery_sharded<W: WindowRunnable>(
    instances: Vec<W>,
    shards: u32,
    threads: usize,
    window: Duration,
) -> (Vec<W>, ShardStats) {
    let n = instances.len();
    let shards = (shards as usize).clamp(1, n.max(1));
    let mut shard_vec: Vec<InstanceShard<W>> = (0..shards)
        .map(|_| InstanceShard {
            instances: Vec::new(),
        })
        .collect();
    for (i, w) in instances.into_iter().enumerate() {
        shard_vec[i % shards].instances.push((i, w));
    }
    let stats = run_sharded(&mut shard_vec, window, Time::MAX, threads);
    let mut out: Vec<(usize, W)> = shard_vec.into_iter().flat_map(|s| s.instances).collect();
    out.sort_unstable_by_key(|&(i, _)| i);
    (out.into_iter().map(|(_, w)| w).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chain::{ChainApp, ChainConfig, ChainWorld};
    use lg_link::{LinkSpeed, LossModel};

    fn battery() -> Vec<ChainWorld> {
        (0..6u32)
            .map(|i| {
                let mut cfg = ChainConfig::protected_chain(
                    LinkSpeed::G100,
                    vec![LossModel::Iid { rate: 1e-3 }, LossModel::Iid { rate: 5e-4 }],
                    ChainApp::RdmaTrials {
                        msg_len: 4_000 + i * 700,
                        trials: 30,
                    },
                );
                cfg.seed = 1000 + i as u64;
                ChainWorld::new(cfg)
            })
            .collect()
    }

    fn fcts(worlds: &[ChainWorld]) -> Vec<Vec<f64>> {
        worlds.iter().map(|w| w.fct.samples_us().to_vec()).collect()
    }

    #[test]
    fn sharded_battery_matches_serial_runs() {
        let mut serial = battery();
        for w in serial.iter_mut() {
            w.run_to_completion();
        }
        let expected = fcts(&serial);
        for (shards, threads) in [(1, 1), (2, 2), (3, 2), (6, 4)] {
            let (worlds, stats) =
                run_battery_sharded(battery(), shards, threads, Duration::from_us(2));
            assert_eq!(fcts(&worlds), expected, "shards={shards} threads={threads}");
            assert_eq!(stats.messages, 0);
            assert!(stats.events > 0);
        }
    }

    #[test]
    fn window_sliced_chain_equals_one_shot_run() {
        let mut one_shot = battery().remove(0);
        one_shot.run_to_completion();
        let mut sliced = battery().remove(0);
        let mut ran = 0;
        while let Some(t) = sliced.next_event_time() {
            ran += sliced.run_until(t + lg_sim::Duration::from_ns(500));
        }
        assert!(ran > 0);
        assert_eq!(sliced.fct.samples_us(), one_shot.fct.samples_us());
        assert_eq!(sliced.e2e_retx, one_shot.e2e_retx);
    }
}
