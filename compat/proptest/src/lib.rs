//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access, so the real `proptest`
//! cannot be fetched. This crate implements the subset of its API that
//! the workspace's property tests use — `proptest!`, `prop_assert*`,
//! integer/float range strategies, `any::<T>()`, tuples, `prop_map`,
//! `collection::vec` and `collection::btree_set` — as a deterministic
//! random tester (no shrinking). Failing cases print the generated
//! inputs and the case seed before propagating the panic, so failures
//! are reproducible and debuggable.
//!
//! Tests written against this subset compile unchanged against the real
//! crates.io `proptest`.

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod test_runner;

/// The common imports: `any`, `Strategy`, and the `proptest!` /
/// `prop_assert*` macros (re-exported from the crate root).
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted choice between same-typed strategies:
/// `prop_oneof![3 => strat_a, 1 => strat_b]` picks `strat_a` three
/// times as often. Bare arms (`prop_oneof![a, b, c]`) weigh equally.
/// Matches the real proptest's macro for the forms used here (no
/// shrinking across arms, as with everything in this stand-in).
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((
                $weight as u32,
                {
                    let s = $strat;
                    ::std::boxed::Box::new(
                        move |rng: &mut $crate::test_runner::TestRng| {
                            $crate::strategy::Strategy::sample(&s, rng)
                        },
                    ) as ::std::boxed::Box<
                        dyn Fn(&mut $crate::test_runner::TestRng) -> _,
                    >
                },
            )),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof![$(1 => $strat),+]
    };
}

/// Assert inside a property body (panics like `assert!`; the runner
/// prints the generated inputs before propagating).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Equality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Inequality assertion inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over deterministically
/// generated inputs. An optional leading
/// `#![proptest_config(ProptestConfig::with_cases(n))]` sets the case
/// count for the whole block.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_body! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = ($cfg).cases;
                for case in 0..cases {
                    let mut rng =
                        $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    $(
                        let $arg =
                            $crate::strategy::Strategy::sample(&($strat), &mut rng);
                    )+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(
                            move || -> $crate::test_runner::TestCaseResult {
                                $body
                                Ok(())
                            },
                        ),
                    );
                    match outcome {
                        Ok(Ok(())) => {}
                        Ok(Err(reason)) => {
                            panic!(
                                "proptest {}: case {}/{} failed ({}) with inputs: {}",
                                stringify!($name),
                                case + 1,
                                cases,
                                reason,
                                inputs
                            );
                        }
                        Err(panic) => {
                            eprintln!(
                                "proptest {}: case {}/{} failed with inputs: {}",
                                stringify!($name),
                                case + 1,
                                cases,
                                inputs
                            );
                            ::std::panic::resume_unwind(panic);
                        }
                    }
                }
            }
        )*
    };
}
