//! Per-port MAC counters, matching what `corruptd` polls from the switch
//! driver (Appendix C): `framesRxOk` and `framesRxAll`, plus TX counters
//! used by the experiment harnesses to measure rates and loss, and the
//! LinkGuardian-specific counters the paper's dashboards read: retx
//! frames out, PFC-style pause frames in both directions, and the egress
//! queue-depth high-water mark.
//!
//! [`PortCounters`] implements [`lg_obs::Observe`], so worlds snapshot
//! ports into the metrics registry and `corruptd` can poll the registry
//! (the same source) instead of reaching into component internals.

use lg_obs::{MetricSink, Observe};
use serde::{Deserialize, Serialize};

/// Port statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PortCounters {
    /// Frames received with a good FCS.
    pub frames_rx_ok: u64,
    /// All frames that arrived at the MAC, including corrupted ones.
    pub frames_rx_all: u64,
    /// Frames transmitted.
    pub frames_tx: u64,
    /// Payload-carrying frame bytes transmitted (frame lengths).
    pub bytes_tx: u64,
    /// Frame bytes received OK.
    pub bytes_rx_ok: u64,
    /// LinkGuardian retransmission frames transmitted (copies out of the
    /// recirc Tx buffer, including the n-copies burst).
    pub lg_retx_tx: u64,
    /// Pause/resume frames transmitted out of this port.
    pub pause_tx: u64,
    /// Pause/resume frames absorbed at this port.
    pub pause_rx: u64,
    /// High-water mark of the egress queue depth in bytes (all classes).
    pub queue_hwm_bytes: u64,
}

impl PortCounters {
    /// Record a good reception.
    pub fn rx_ok(&mut self, frame_len: u32) {
        self.frames_rx_all += 1;
        self.frames_rx_ok += 1;
        self.bytes_rx_ok += frame_len as u64;
    }

    /// Record a corrupted reception (FCS failure — frame dropped by MAC).
    pub fn rx_corrupt(&mut self) {
        self.frames_rx_all += 1;
    }

    /// Record a transmission.
    pub fn tx(&mut self, frame_len: u32) {
        self.frames_tx += 1;
        self.bytes_tx += frame_len as u64;
    }

    /// Record a transmitted LinkGuardian retransmission copy (in addition
    /// to the plain [`PortCounters::tx`] accounting).
    pub fn tx_lg_retx(&mut self) {
        self.lg_retx_tx += 1;
    }

    /// Record a transmitted pause/resume frame.
    pub fn tx_pause(&mut self) {
        self.pause_tx += 1;
    }

    /// Record an absorbed pause/resume frame.
    pub fn rx_pause(&mut self) {
        self.pause_rx += 1;
    }

    /// Fold an observed egress queue depth into the high-water mark.
    pub fn note_queue_depth(&mut self, bytes: u64) {
        self.queue_hwm_bytes = self.queue_hwm_bytes.max(bytes);
    }

    /// The loss rate observed between two snapshots: corrupted / all.
    pub fn loss_rate_since(&self, earlier: &PortCounters) -> f64 {
        let all = self.frames_rx_all - earlier.frames_rx_all;
        let ok = self.frames_rx_ok - earlier.frames_rx_ok;
        if all == 0 {
            0.0
        } else {
            (all - ok) as f64 / all as f64
        }
    }
}

impl Observe for PortCounters {
    fn observe(&self, m: &mut MetricSink) {
        m.counter("frames_rx_ok", self.frames_rx_ok);
        m.counter("frames_rx_all", self.frames_rx_all);
        m.counter("frames_tx", self.frames_tx);
        m.counter("bytes_tx", self.bytes_tx);
        m.counter("bytes_rx_ok", self.bytes_rx_ok);
        m.counter("lg_retx_tx", self.lg_retx_tx);
        m.counter("pause_tx", self.pause_tx);
        m.counter("pause_rx", self.pause_rx);
        m.gauge("queue_hwm_bytes", self.queue_hwm_bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting() {
        let mut c = PortCounters::default();
        c.rx_ok(100);
        c.rx_ok(200);
        c.rx_corrupt();
        c.tx(300);
        assert_eq!(c.frames_rx_all, 3);
        assert_eq!(c.frames_rx_ok, 2);
        assert_eq!(c.bytes_rx_ok, 300);
        assert_eq!(c.frames_tx, 1);
        assert_eq!(c.bytes_tx, 300);
    }

    #[test]
    fn lg_counters() {
        let mut c = PortCounters::default();
        c.tx(64);
        c.tx_lg_retx();
        c.tx_pause();
        c.rx_pause();
        c.note_queue_depth(500);
        c.note_queue_depth(200);
        assert_eq!(c.lg_retx_tx, 1);
        assert_eq!(c.pause_tx, 1);
        assert_eq!(c.pause_rx, 1);
        assert_eq!(c.queue_hwm_bytes, 500);
    }

    #[test]
    fn observes_into_registry() {
        let mut c = PortCounters::default();
        c.rx_ok(100);
        c.tx_lg_retx();
        c.note_queue_depth(300);
        let mut reg = lg_obs::MetricsRegistry::new();
        reg.record(7, "switch_port", "sw_tx:0", &c);
        assert_eq!(
            reg.latest_counter("switch_port", "sw_tx:0", "frames_rx_ok"),
            Some(1)
        );
        assert_eq!(
            reg.latest_counter("switch_port", "sw_tx:0", "lg_retx_tx"),
            Some(1)
        );
        assert_eq!(
            reg.latest_gauge("switch_port", "sw_tx:0", "queue_hwm_bytes"),
            Some((300, 300))
        );
    }

    #[test]
    fn windowed_loss_rate() {
        let mut c = PortCounters::default();
        for _ in 0..90 {
            c.rx_ok(100);
        }
        for _ in 0..10 {
            c.rx_corrupt();
        }
        let snapshot = c;
        assert!((c.loss_rate_since(&PortCounters::default()) - 0.1).abs() < 1e-12);
        // a new clean window reads zero loss
        for _ in 0..100 {
            c.rx_ok(100);
        }
        assert_eq!(c.loss_rate_since(&snapshot), 0.0);
    }

    #[test]
    fn empty_window_is_zero() {
        let c = PortCounters::default();
        assert_eq!(c.loss_rate_since(&c), 0.0);
    }
}
