//! Mapping between internal 64-bit sequence indices and the 17-bit
//! (16-bit + era) wire sequence numbers.
//!
//! The dataplane only ever carries the compact wire form; the simulation
//! widens it to a `u64` for buffer keys and distance arithmetic, exactly
//! like a verification harness would. Reconstruction uses the era-corrected
//! comparison from [`lg_packet::seqno`], so the wrap-around logic is
//! exercised on every received packet.

use lg_packet::SeqNo;

/// The wire sequence number corresponding to absolute index `abs`.
///
/// Index 0 is reserved as "nothing sent/received yet"; the first packet
/// carries index 1.
pub fn wire_of(abs: u64) -> SeqNo {
    // Two eras span 2 * 65536 consecutive indices; advance handles the
    // era toggling per 65536-wrap.
    SeqNo::ZERO.advance((abs % (2 * 65_536)) as u32)
}

/// Reconstruct the absolute index of wire number `w`, given a reference
/// absolute index `refr` known to be within ±32 K of the true value.
pub fn abs_of(w: SeqNo, refr: u64) -> u64 {
    let wr = wire_of(refr);
    use core::cmp::Ordering;
    match w.cmp_seq(wr) {
        Ordering::Equal => refr,
        Ordering::Greater => refr + w.forward_dist(wr) as u64,
        Ordering::Less => refr - wr.forward_dist(w) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_near_reference() {
        for refr in [1u64, 100, 65_535, 65_536, 200_000, 1_000_000] {
            for delta in -100i64..=100 {
                let abs = (refr as i64 + delta).max(0) as u64;
                let w = wire_of(abs);
                assert_eq!(abs_of(w, refr), abs, "abs={abs} ref={refr}");
            }
        }
    }

    #[test]
    fn wire_wraps_with_era() {
        assert_eq!(wire_of(0), SeqNo::ZERO);
        assert_eq!(wire_of(65_536).raw(), 0);
        assert!(wire_of(65_536).era());
        assert_eq!(wire_of(2 * 65_536), SeqNo::ZERO);
    }

    #[test]
    fn reconstruction_across_wrap_points() {
        // reference just before an era flip, packet just after
        let refr = 65_535u64;
        let abs = 65_540u64;
        assert_eq!(abs_of(wire_of(abs), refr), abs);
        // and the reverse (late duplicate from the previous era)
        assert_eq!(abs_of(wire_of(refr), abs), refr);
    }

    #[test]
    fn long_walk_consistency() {
        let mut refr = 1u64;
        for abs in 1..300_000u64 {
            assert_eq!(abs_of(wire_of(abs), refr), abs);
            refr = abs;
        }
    }
}
