//! Flow-completion-time collection and the percentile/improvement report
//! format the paper's FCT figures and Table 2 use.

use lg_sim::{Duration, Samples};
use serde::{Deserialize, Serialize};

/// The percentiles the paper reports (Table 2, Figs 10–12).
pub const REPORT_PERCENTILES: [f64; 5] = [0.99, 0.999, 0.9999, 0.99999, 0.5];

/// A collection of FCT samples for one experiment configuration.
#[derive(Debug, Clone, Default)]
pub struct FctCollector {
    samples: Samples,
}

impl FctCollector {
    /// Empty collector.
    pub fn new() -> FctCollector {
        FctCollector::default()
    }

    /// Record one flow's completion time.
    pub fn record(&mut self, fct: Duration) {
        self.samples.record(fct.as_us_f64());
    }

    /// Number of flows recorded.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// True if nothing recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// FCT at quantile `q`, in microseconds.
    pub fn quantile_us(&mut self, q: f64) -> f64 {
        self.samples.quantile(q)
    }

    /// Standard deviation in microseconds.
    pub fn std_dev_us(&self) -> f64 {
        self.samples.std_dev()
    }

    /// The top-`frac` tail of the FCT CDF as (us, cum_prob) points
    /// (Figs 10–12 plot the top 1% / 5%).
    pub fn tail_cdf(&mut self, frac: f64) -> Vec<(f64, f64)> {
        self.samples.tail_ecdf(frac)
    }

    /// Raw samples in recording order, in microseconds (golden-output
    /// determinism tests compare these bit-for-bit).
    pub fn samples_us(&self) -> &[f64] {
        self.samples.values()
    }

    /// Table-2-style row of the top percentiles.
    pub fn report(&mut self) -> FctReport {
        FctReport {
            n: self.samples.len(),
            p99_us: self.samples.quantile(0.99),
            p999_us: self.samples.quantile(0.999),
            p9999_us: self.samples.quantile(0.9999),
            p99999_us: self.samples.quantile(0.99999),
            std_dev_us: self.samples.std_dev(),
            mean_us: self.samples.mean(),
        }
    }
}

/// Summary row (Table 2 columns).
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct FctReport {
    /// Number of trials.
    pub n: usize,
    /// 99th percentile, µs.
    pub p99_us: f64,
    /// 99.9th percentile, µs.
    pub p999_us: f64,
    /// 99.99th percentile, µs.
    pub p9999_us: f64,
    /// 99.999th percentile, µs.
    pub p99999_us: f64,
    /// Standard deviation, µs.
    pub std_dev_us: f64,
    /// Mean, µs.
    pub mean_us: f64,
}

impl FctReport {
    /// The "X× improvement" headline number: `other`'s percentile divided
    /// by ours at the given quantile.
    pub fn improvement_at_p999(&self, baseline: &FctReport) -> f64 {
        baseline.p999_us / self.p999_us
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn collects_and_reports() {
        let mut c = FctCollector::new();
        for i in 1..=1000 {
            c.record(Duration::from_us(i));
        }
        let r = c.report();
        assert_eq!(r.n, 1000);
        assert_eq!(r.p99_us, 990.0);
        assert_eq!(r.p999_us, 999.0);
        assert!((r.mean_us - 500.5).abs() < 1e-9);
    }

    #[test]
    fn improvement_factor() {
        let mut fast = FctCollector::new();
        let mut slow = FctCollector::new();
        for _ in 0..100 {
            fast.record(Duration::from_us(10));
            slow.record(Duration::from_us(510));
        }
        let f = fast.report();
        let s = slow.report();
        assert_eq!(f.improvement_at_p999(&s), 51.0);
    }

    #[test]
    fn tail_cdf_covers_requested_fraction() {
        let mut c = FctCollector::new();
        for i in 1..=100 {
            c.record(Duration::from_us(i));
        }
        let tail = c.tail_cdf(0.05);
        // points with cumulative probability >= 0.95: 95..=100
        assert_eq!(tail.len(), 6);
        assert_eq!(tail.last().unwrap().1, 1.0);
    }
}
