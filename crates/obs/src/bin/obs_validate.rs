//! Validate an observability JSONL file against a schema.
//!
//! ```text
//! obs_validate <file.jsonl> <schema.json> [--expect <type>]...
//! ```
//!
//! Exits 0 when every line conforms (and every `--expect`ed record type
//! appears at least once); prints the first violation and exits 1
//! otherwise. Used by CI after running a figure binary with
//! `--trace --metrics-out`.
//!
//! The document streams through [`LineReader`] into an incremental
//! [`Schema::validator`], so memory stays O(record types + telemetry
//! streams) however large the dump — fabric-scale dumps run to
//! hundreds of megabytes.

use lg_obs::schema::Schema;
use lg_obs::LineReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut paths = Vec::new();
    let mut expected = Vec::new();
    let mut i = 0;
    while i < args.len() {
        if args[i] == "--expect" {
            if i + 1 >= args.len() {
                eprintln!("--expect needs a record type");
                return ExitCode::FAILURE;
            }
            expected.push(args[i + 1].clone());
            i += 2;
        } else {
            paths.push(args[i].clone());
            i += 1;
        }
    }
    if paths.len() != 2 {
        eprintln!("usage: obs_validate <file.jsonl> <schema.json> [--expect <type>]...");
        return ExitCode::FAILURE;
    }
    let (doc_path, schema_path) = (&paths[0], &paths[1]);
    let schema_text = match std::fs::read_to_string(schema_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let schema = match Schema::parse(&schema_text) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{schema_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let file = match std::fs::File::open(doc_path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot read {doc_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let mut reader = LineReader::new(file);
    let mut validator = schema.validator();
    let counts = loop {
        match reader.next_line() {
            Ok(Some(line)) => {
                if let Err(e) = validator.feed(line) {
                    eprintln!("{doc_path}: {e}");
                    return ExitCode::FAILURE;
                }
            }
            Ok(None) => break validator.finish(),
            Err(e) => {
                eprintln!("cannot read {doc_path}: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    match counts {
        Ok(counts) => {
            for ty in &expected {
                if !counts.iter().any(|(t, _)| t == ty) {
                    eprintln!("{doc_path}: no \"{ty}\" records (expected at least one)");
                    return ExitCode::FAILURE;
                }
            }
            let total: usize = counts.iter().map(|(_, n)| n).sum();
            let breakdown: Vec<String> = counts.iter().map(|(t, n)| format!("{t}={n}")).collect();
            println!("{doc_path}: OK, {total} records ({})", breakdown.join(", "));
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{doc_path}: {e}");
            ExitCode::FAILURE
        }
    }
}
