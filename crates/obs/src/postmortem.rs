//! Packet-lifecycle postmortems.
//!
//! Every packet-carrying [`TraceRecord`] stores the packet's `uid`
//! (shared by LinkGuardian retransmission copies, so a retx shows up in
//! the original's history). Filtering a drained/snapshotted ring by uid
//! reconstructs the packet's full causal chain: TX → corrupt drop →
//! LOSS_NOTIFICATION → recirc retx → delivery. [`report`] renders it
//! human-readably for invariant-trip dumps (stale pool handle, pool leak,
//! golden-FCT divergence).
//!
//! ## Cross-shard spans
//!
//! In a sharded run each shard owns its own ring, and a packet that
//! crosses a shard boundary leaves records in several of them. Because
//! records carry the *global* identifiers (uid, link in `aux`, hop in
//! `inst`) rather than anything shard-local, [`merge_shard_logs`]
//! reassembles the per-shard logs into one timeline whose order depends
//! only on simulation outcomes — the same uid chain falls out whatever
//! the shard layout, which is what lets drop → link-retx → deliver
//! timelines span shards and still compare byte-identical across
//! layouts.

use crate::trace::{Kind, TraceRecord};

/// The canonical layout-invariant ordering of merged shard logs:
/// `(t_ps, aux, kind, uid, seq, inst)`. Every field is derived from
/// simulation state, so two runs with different shard layouts sort
/// their merged logs identically.
pub fn span_key(r: &TraceRecord) -> (u64, u32, u8, u64, u64, u16) {
    (r.t_ps, r.aux, r.kind as u8, r.uid, r.seq, r.inst)
}

/// Merge per-shard trace logs into one layout-invariant timeline
/// (sorted by [`span_key`]). [`history`]/[`chain`]/[`report`] on the
/// merged log reconstruct packet lifecycles that span shards.
pub fn merge_shard_logs(logs: impl IntoIterator<Item = Vec<TraceRecord>>) -> Vec<TraceRecord> {
    let mut out: Vec<TraceRecord> = logs.into_iter().flatten().collect();
    out.sort_unstable_by_key(span_key);
    out
}

/// All records for packet `uid`, in emission order.
pub fn history(records: &[TraceRecord], uid: u64) -> Vec<TraceRecord> {
    records.iter().filter(|r| r.uid == uid).copied().collect()
}

/// The ordered kinds in packet `uid`'s history (compact form for tests).
pub fn chain(records: &[TraceRecord], uid: u64) -> Vec<Kind> {
    records
        .iter()
        .filter(|r| r.uid == uid)
        .map(|r| r.kind)
        .collect()
}

/// All records touching pool slot `idx` (for stale-handle dumps, where
/// only the slot index is known), in emission order. Packet-carrying
/// records store the slot index in `aux`.
pub fn slot_history(records: &[TraceRecord], idx: u32) -> Vec<TraceRecord> {
    records
        .iter()
        .filter(|r| r.uid != 0 && r.aux == idx)
        .copied()
        .collect()
}

/// Render packet `uid`'s history as a multi-line report.
pub fn report(records: &[TraceRecord], uid: u64) -> String {
    render(&history(records, uid), &format!("packet uid={uid}"))
}

/// Render a pre-filtered record list with a heading.
pub fn render(records: &[TraceRecord], what: &str) -> String {
    use std::fmt::Write as _;
    let mut out = format!("postmortem for {what}: {} records\n", records.len());
    for r in records {
        let _ = writeln!(
            out,
            "  t={:>14} ps  {:<11} {:<13} inst={:<5} uid={} seq={} aux={}",
            r.t_ps,
            r.comp.name(),
            r.kind.name(),
            r.inst,
            r.uid,
            r.seq,
            r.aux
        );
    }
    out
}

/// Dump the current thread's ring for `uid` to stderr (invariant-trip
/// helper: callable from a panic path). No-op when the ring is empty or
/// tracing is compiled out.
pub fn eprint_for_uid(uid: u64) {
    let snap = crate::trace::snapshot();
    if !snap.is_empty() {
        eprintln!("{}", report(&snap, uid));
    }
}

/// Dump the current thread's ring for pool slot `idx` to stderr.
pub fn eprint_for_slot(idx: u32) {
    let snap = crate::trace::snapshot();
    if !snap.is_empty() {
        eprintln!(
            "{}",
            render(&slot_history(&snap, idx), &format!("slot {idx}"))
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::Comp;

    fn rec(t: u64, uid: u64, kind: Kind, aux: u32) -> TraceRecord {
        TraceRecord {
            t_ps: t,
            uid,
            seq: uid,
            aux,
            inst: 0,
            comp: Comp::Link,
            kind,
        }
    }

    #[test]
    fn history_filters_and_keeps_order() {
        let recs = vec![
            rec(1, 7, Kind::TxDone, 3),
            rec(2, 8, Kind::TxDone, 4),
            rec(3, 7, Kind::CorruptDrop, 3),
            rec(4, 7, Kind::Retx, 3),
            rec(5, 7, Kind::HostDeliver, 3),
        ];
        assert_eq!(
            chain(&recs, 7),
            vec![
                Kind::TxDone,
                Kind::CorruptDrop,
                Kind::Retx,
                Kind::HostDeliver
            ]
        );
        assert_eq!(history(&recs, 8).len(), 1);
        assert_eq!(slot_history(&recs, 3).len(), 4);
        let rep = report(&recs, 7);
        assert!(rep.contains("corrupt_drop"));
        assert!(rep.contains("4 records"));
    }

    #[test]
    fn merged_shard_logs_are_layout_invariant() {
        // One packet's lifecycle scattered across three "shards"; any
        // split of the same records must merge to the same timeline.
        let all = vec![
            rec(1, 7, Kind::TxDone, 3),
            rec(2, 7, Kind::CorruptDrop, 3),
            rec(2, 9, Kind::TxDone, 4),
            rec(3, 7, Kind::Retx, 5),
            rec(5, 7, Kind::HostDeliver, 6),
        ];
        let merged_one = merge_shard_logs(vec![all.clone()]);
        let split = vec![vec![all[3], all[0]], vec![all[4], all[2]], vec![all[1]]];
        let merged_split = merge_shard_logs(split);
        assert_eq!(merged_one, merged_split);
        assert_eq!(
            chain(&merged_split, 7),
            vec![
                Kind::TxDone,
                Kind::CorruptDrop,
                Kind::Retx,
                Kind::HostDeliver
            ]
        );
    }
}
