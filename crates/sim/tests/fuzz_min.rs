//! Minimizing differential fuzzer for the timer-wheel event queue.
//!
//! Ignored by default (the proptest in `prop.rs` covers the same ground
//! on every run); run explicitly when debugging a divergence:
//!
//! ```text
//! cargo test -p lg-sim --test fuzz_min -- --ignored --nocapture
//! ```
//!
//! Unlike the proptest stand-in, this harness shrinks: it drops ops and
//! halves delays until the failing sequence is locally minimal, then
//! prints it. The rollover cascade bug fixed in the wheel's `advance`
//! (cursor carried into a still-occupied higher-level slot) was found
//! by the proptest and reduced to a 12-op reproduction by this fuzzer.

use lg_sim::event::reference;
use lg_sim::{EventQueue, Rng, Time};

#[derive(Debug, Clone, Copy)]
enum Op {
    Sched(u64), // delay in ps from wheel.now()
    Cancel(usize),
    Peek,
    Pop,
}

fn run(ops: &[Op]) -> Result<(), String> {
    let mut wheel = EventQueue::new();
    let mut oracle = reference::EventQueue::new();
    let mut wh = Vec::new();
    let mut oh = Vec::new();
    for (step, &op) in ops.iter().enumerate() {
        match op {
            Op::Sched(d) => {
                let at = Time::from_ps(wheel.now().as_ps().saturating_add(d));
                let tag = wh.len();
                wh.push(wheel.schedule_at(at, tag));
                oh.push(oracle.schedule_at(at, tag));
            }
            Op::Cancel(i) => {
                if !wh.is_empty() {
                    let i = i % wh.len();
                    let (w, o) = (wheel.cancel(wh[i]), oracle.cancel(oh[i]));
                    if w != o {
                        return Err(format!("step {step}: cancel {w} vs {o}"));
                    }
                }
            }
            Op::Peek => {
                let (w, o) = (wheel.peek_time(), oracle.peek_time());
                if w != o {
                    return Err(format!("step {step}: peek {w:?} vs {o:?}"));
                }
            }
            Op::Pop => {
                let (w, o) = (wheel.pop(), oracle.pop());
                if w != o {
                    return Err(format!("step {step}: pop {w:?} vs {o:?}"));
                }
            }
        }
        if wheel.len() != oracle.len() {
            return Err(format!(
                "step {step}: len {} vs {}",
                wheel.len(),
                oracle.len()
            ));
        }
    }
    loop {
        let (w, o) = (wheel.pop(), oracle.pop());
        if w != o {
            return Err(format!("drain: pop {w:?} vs {o:?}"));
        }
        if w.is_none() {
            return Ok(());
        }
    }
}

fn gen_ops(rng: &mut Rng, len: usize) -> Vec<Op> {
    (0..len)
        .map(|_| match rng.next_u64() % 12 {
            k @ 0..=5 => {
                let bits = [10, 14, 24, 34, 44, 60][k as usize];
                Op::Sched(rng.next_u64() % (1u64 << bits))
            }
            6 | 7 => Op::Cancel(rng.next_u64() as usize),
            8 => Op::Peek,
            _ => Op::Pop,
        })
        .collect()
}

#[test]
#[ignore]
fn find_minimal_divergence() {
    for seed in 0..20_000u64 {
        let mut rng = Rng::new(seed);
        let ops = gen_ops(&mut rng, 40);
        if run(&ops).is_ok() {
            continue;
        }
        // Shrink: repeatedly try dropping each op.
        let mut best = ops;
        loop {
            let mut improved = false;
            for i in 0..best.len() {
                let mut cand = best.clone();
                cand.remove(i);
                if run(&cand).is_err() {
                    best = cand;
                    improved = true;
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        // Shrink delays toward zero by halving.
        loop {
            let mut improved = false;
            for i in 0..best.len() {
                if let Op::Sched(d) = best[i] {
                    for nd in [d / 2, d - d / 4, d.saturating_sub(1)] {
                        if nd == d {
                            continue;
                        }
                        let mut cand = best.clone();
                        cand[i] = Op::Sched(nd);
                        if run(&cand).is_err() {
                            best = cand;
                            improved = true;
                            break;
                        }
                    }
                }
                if improved {
                    break;
                }
            }
            if !improved {
                break;
            }
        }
        eprintln!("seed {seed}: minimal {} ops:", best.len());
        for op in &best {
            eprintln!("  {op:?}");
        }
        eprintln!("error: {}", run(&best).unwrap_err());
        panic!("divergence found");
    }
    eprintln!("no divergence in 20k seeds");
}
