//! Streaming flow-completion-time aggregation.
//!
//! The packet engine used to retain every `(flow, fct)` pair and sort
//! at the end — O(flows) memory, which is exactly what a fabric-scale
//! run cannot afford. [`FctStream`] replaces the retained vector with
//! two fixed-size structures per shard:
//!
//! * a log-bucketed histogram ([`lg_obs::LogHist`], 64 sub-buckets →
//!   relative error ≤ 1/64) recording *every* completion, and
//! * an exact top-K *tail reservoir*: a min-heap over the K largest
//!   FCTs seen, so the slowest K flows are kept exactly.
//!
//! Quantiles resolve against the reservoir when their rank falls inside
//! it (the tail — p99/p999 at any realistic flow count — is exact) and
//! against the histogram otherwise. With `K` of 65536, p999 stays exact
//! up to ~65M flows and p50 up to 128K flows; the pod-scale fixtures sit
//! entirely inside the reservoir, which is what lets the differential
//! test demand bit-for-bit agreement with the retained-vector path.
//!
//! ## Determinism under merging
//!
//! Per-shard streams merge into one global stream at collect time.
//! Histogram merging is bucket-wise addition — exact, so merge order
//! cannot change any histogram answer (see [`lg_obs::LogHist::merge`]). The
//! reservoir merge keeps the K largest of the union of two top-K sets,
//! which equals the top-K multiset of the union of the underlying
//! streams; a multiset has no order, so the merged reservoir is the
//! same whatever the shard layout or merge order. Both halves being
//! layout-invariant, the digest is too — the packet engine's
//! byte-identical-across-shards contract survives dropping the
//! retained vector.

use lg_obs::QuantileStream;

/// Sub-bucket resolution of the FCT histogram.
const SUB_BUCKETS: u32 = 64;

/// Incremental FCT aggregator: O(buckets + K) memory however many
/// flows complete. A thin FCT-flavored wrapper over
/// [`lg_obs::QuantileStream`] (which this module originated) fixing
/// the histogram resolution at 64 sub-buckets.
#[derive(Debug)]
pub struct FctStream {
    inner: QuantileStream,
}

/// Fixed quantile summary of a finished stream. All fields are exact
/// except where a quantile's rank falls outside the tail reservoir, in
/// which case it is a histogram bucket bound (relative error ≤ 1/64).
/// Plain `u64`s keep it `Eq`, so differential tests compare digests
/// directly.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FctDigest {
    /// Completions recorded.
    pub count: u64,
    /// Smallest FCT (exact; 0 when empty).
    pub min: u64,
    /// Largest FCT (exact; 0 when empty).
    pub max: u64,
    /// Median.
    pub p50: u64,
    /// 99th percentile.
    pub p99: u64,
    /// 99.9th percentile.
    pub p999: u64,
}

impl FctStream {
    /// A stream retaining the `tail_k` largest values exactly.
    pub fn new(tail_k: usize) -> FctStream {
        FctStream {
            inner: QuantileStream::new(SUB_BUCKETS, tail_k),
        }
    }

    /// Record one completion time.
    pub fn record(&mut self, fct: u64) {
        self.inner.record(fct);
    }

    /// Completions recorded.
    pub fn len(&self) -> u64 {
        self.inner.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Merge another stream (consumed) into this one. The result is
    /// indistinguishable from one stream that recorded both inputs, so
    /// merge order cannot change the digest (see module docs).
    pub fn merge(&mut self, other: FctStream) {
        self.inner.merge(other.inner);
    }

    /// Value at quantile `q` in `[0, 1]`, reproducing the retained-Vec
    /// convention (`i = round((len-1)·q)` into the ascending sort):
    /// exact via the tail reservoir when rank `i` falls inside it, a
    /// histogram bucket bound otherwise. 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        self.inner.quantile(q)
    }

    /// The fixed quantile summary (shares one tail sort).
    pub fn digest(&self) -> FctDigest {
        if self.inner.is_empty() {
            return FctDigest::default();
        }
        let desc = self.inner.tail_desc();
        FctDigest {
            count: self.inner.len(),
            min: self.inner.min(),
            max: self.inner.max(),
            p50: self.inner.quantile_with_tail(&desc, 0.5),
            p99: self.inner.quantile_with_tail(&desc, 0.99),
            p999: self.inner.quantile_with_tail(&desc, 0.999),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_sim::Rng;

    /// The retained-Vec convention the stream must reproduce.
    fn vec_percentile(sorted: &[u64], q: f64) -> u64 {
        let i = ((sorted.len() - 1) as f64 * q).round() as usize;
        sorted[i.min(sorted.len() - 1)]
    }

    fn sample(n: usize, seed: u64) -> Vec<u64> {
        let mut rng = Rng::new(seed);
        (0..n)
            .map(|_| (rng.exp(50_000.0) as u64).max(1) + rng.below(1000))
            .collect()
    }

    #[test]
    fn covered_quantiles_match_vec_path_exactly() {
        let vals = sample(5000, 11);
        let mut s = FctStream::new(8192); // tail covers everything
        for &v in &vals {
            s.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), vec_percentile(&sorted, q), "q={q}");
        }
        let d = s.digest();
        assert_eq!(d.count, vals.len() as u64);
        assert_eq!(d.min, sorted[0]);
        assert_eq!(d.max, *sorted.last().unwrap());
        assert_eq!(d.p50, vec_percentile(&sorted, 0.5));
        assert_eq!(d.p999, vec_percentile(&sorted, 0.999));
    }

    #[test]
    fn small_tail_keeps_the_top_exact_and_bounds_the_rest() {
        let vals = sample(10_000, 7);
        let mut s = FctStream::new(128); // covers ~top 1.28%
        for &v in &vals {
            s.record(v);
        }
        let mut sorted = vals.clone();
        sorted.sort_unstable();
        // p99 and p999 ranks fall inside the 128-deep tail: exact.
        for q in [0.99, 0.999, 1.0] {
            assert_eq!(s.quantile(q), vec_percentile(&sorted, q), "q={q}");
        }
        // p50 falls back to the histogram: bounded relative error.
        let (got, want) = (s.quantile(0.5) as f64, vec_percentile(&sorted, 0.5) as f64);
        assert!(
            (got - want).abs() / want <= 1.0 / 64.0 + 1e-9,
            "{got} vs {want}"
        );
    }

    #[test]
    fn merge_is_layout_invariant() {
        let vals = sample(4000, 3);
        let mut whole = FctStream::new(256);
        for &v in &vals {
            whole.record(v);
        }
        // Split into 1, 3, and 7 shards and merge in different orders.
        for parts in [1usize, 3, 7] {
            let mut shards: Vec<FctStream> = (0..parts).map(|_| FctStream::new(256)).collect();
            for (i, &v) in vals.iter().enumerate() {
                shards[i % parts].record(v);
            }
            shards.reverse(); // merge order must not matter
            let mut merged = shards.pop().unwrap();
            for s in shards {
                merged.merge(s);
            }
            assert_eq!(merged.digest(), whole.digest(), "parts={parts}");
            assert_eq!(merged.len(), whole.len());
        }
    }

    #[test]
    fn empty_and_zero_k_streams_behave() {
        let s = FctStream::new(64);
        assert!(s.is_empty());
        assert_eq!(s.digest(), FctDigest::default());
        assert_eq!(s.quantile(0.5), 0);

        let mut z = FctStream::new(0); // histogram-only
        for v in [10u64, 20, 30, 40] {
            z.record(v);
        }
        assert_eq!(z.digest().count, 4);
        assert_eq!(z.digest().max, 40);
        // Values below SUB_BUCKETS land in exact unit buckets.
        assert_eq!(z.quantile(1.0), 40);
    }
}
