//! No-op derive macros backing the offline `serde` stand-in.
//!
//! `#[derive(Serialize)]` / `#[derive(Deserialize)]` must expand to
//! *something* for annotated types to compile; since nothing in the
//! workspace ever serializes a value, expanding to nothing is sufficient.

use proc_macro::TokenStream;

/// Accept and discard a `#[derive(Serialize)]` annotation.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accept and discard a `#[derive(Deserialize)]` annotation.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
