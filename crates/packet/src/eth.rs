//! Ethernet II framing constants and header representation.

use crate::wire::{ParseError, Reader, Result, Writer};
use serde::{Deserialize, Serialize};

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The broadcast address ff:ff:ff:ff:ff:ff.
    pub const BROADCAST: MacAddr = MacAddr([0xFF; 6]);

    /// A locally-administered unicast address derived from a node index,
    /// convenient for simulation.
    pub const fn from_index(i: u32) -> MacAddr {
        let b = i.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

/// EtherType values used in this repository.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u16)]
pub enum EtherType {
    /// IPv4 payload.
    Ipv4 = 0x0800,
    /// IEEE 802.1Qbb priority flow control / MAC control.
    MacControl = 0x8808,
    /// LinkGuardian control packets (loss notification, explicit ACK,
    /// dummy). A dedicated experimental ethertype keeps them distinct from
    /// tenant traffic, mirroring the paper's custom headers.
    LinkGuardian = 0x88B5, // IEEE 802 local experimental ethertype 1
}

impl EtherType {
    /// Parse from the wire value.
    pub fn from_u16(v: u16) -> Result<EtherType> {
        match v {
            0x0800 => Ok(EtherType::Ipv4),
            0x8808 => Ok(EtherType::MacControl),
            0x88B5 => Ok(EtherType::LinkGuardian),
            _ => Err(ParseError::Malformed),
        }
    }
}

/// Length of the Ethernet II header (dst + src + ethertype).
pub const HEADER_LEN: u32 = 14;
/// Length of the frame check sequence trailer.
pub const FCS_LEN: u32 = 4;
/// Preamble + start-of-frame delimiter + inter-frame gap, counted when
/// computing on-wire occupancy (the paper's "1,538 octets on wire" for a
/// 1,500-byte-MTU frame).
pub const WIRE_OVERHEAD: u32 = 20;
/// Minimum Ethernet frame length (header + payload + FCS).
pub const MIN_FRAME_LEN: u32 = 64;
/// Standard MTU (maximum L3 payload carried by one frame).
pub const MTU: u32 = 1500;
/// Frame length of a full-MTU frame (1500 + 14 + 4).
pub const MTU_FRAME_LEN: u32 = MTU + HEADER_LEN + FCS_LEN; // 1518
/// On-wire length of a full-MTU frame (paper: 1,538 octets).
pub const MTU_WIRE_LEN: u32 = MTU_FRAME_LEN + WIRE_OVERHEAD; // 1538

/// Frame length (incl. header and FCS) for an L3 payload of `l3_len` bytes,
/// respecting the 64-byte minimum.
pub const fn frame_len_for_payload(l3_len: u32) -> u32 {
    let len = l3_len + HEADER_LEN + FCS_LEN;
    if len < MIN_FRAME_LEN {
        MIN_FRAME_LEN
    } else {
        len
    }
}

/// On-wire bytes consumed by a frame of `frame_len` bytes.
pub const fn wire_len(frame_len: u32) -> u32 {
    frame_len + WIRE_OVERHEAD
}

/// Ethernet II header representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EthernetRepr {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// Payload type.
    pub ethertype: EtherType,
}

impl EthernetRepr {
    /// Serialized header length.
    pub const LEN: usize = HEADER_LEN as usize;

    /// Write the header into `buf` (must be at least [`Self::LEN`] bytes).
    pub fn emit(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        w.bytes(&self.dst.0);
        w.bytes(&self.src.0);
        w.u16(self.ethertype as u16);
    }

    /// Parse a header from `buf`.
    pub fn parse(buf: &[u8]) -> Result<EthernetRepr> {
        let mut r = Reader::new(buf);
        let mut dst = [0u8; 6];
        dst.copy_from_slice(r.bytes(6)?);
        let mut src = [0u8; 6];
        src.copy_from_slice(r.bytes(6)?);
        let ethertype = EtherType::from_u16(r.u16()?)?;
        Ok(EthernetRepr {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mtu_wire_length_matches_paper() {
        // §4.6: "the standard MTU-sized frame is 1,538 octets on wire"
        assert_eq!(MTU_WIRE_LEN, 1538);
        assert_eq!(MTU_FRAME_LEN, 1518);
    }

    #[test]
    fn min_frame_enforced() {
        assert_eq!(frame_len_for_payload(1), 64);
        assert_eq!(frame_len_for_payload(46), 64);
        assert_eq!(frame_len_for_payload(47), 65);
        assert_eq!(frame_len_for_payload(1500), 1518);
    }

    #[test]
    fn header_round_trip() {
        let h = EthernetRepr {
            dst: MacAddr::from_index(7),
            src: MacAddr::from_index(42),
            ethertype: EtherType::Ipv4,
        };
        let mut buf = [0u8; 14];
        h.emit(&mut buf);
        assert_eq!(EthernetRepr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn unknown_ethertype_rejected() {
        let h = EthernetRepr {
            dst: MacAddr::BROADCAST,
            src: MacAddr::from_index(1),
            ethertype: EtherType::LinkGuardian,
        };
        let mut buf = [0u8; 14];
        h.emit(&mut buf);
        buf[12] = 0x12;
        buf[13] = 0x34;
        assert_eq!(EthernetRepr::parse(&buf), Err(ParseError::Malformed));
    }

    #[test]
    fn mac_from_index_unique() {
        assert_ne!(MacAddr::from_index(1), MacAddr::from_index(2));
        assert_eq!(MacAddr::from_index(9), MacAddr::from_index(9));
    }
}
