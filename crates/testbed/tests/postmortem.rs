//! Packet-lifecycle postmortem smoke test: with tracing on, a packet
//! corrupt-dropped on the wire must be reconstructable — stamp at the
//! LinkGuardian sender, transmit, corrupt drop, retransmission, recovery
//! at the receiver, delivery — from one `postmortem::history` call.

use lg_link::{LinkSpeed, LossModel};
use lg_obs::trace::{Kind, Level};
use lg_sim::{Duration, Time};
use lg_testbed::{World, WorldConfig};

#[test]
fn corrupt_drop_postmortem_reconstructs_lifecycle() {
    lg_obs::trace::set_ring_capacity(1 << 20);
    lg_obs::trace::set_level(Level::Pkt);
    // A lossy protected link under line-rate stress: plenty of corrupt
    // drops, every one of them link-locally retransmitted.
    let mut cfg = WorldConfig::new(LinkSpeed::G25, LossModel::Iid { rate: 1e-2 });
    cfg.seed = 7;
    let mut w = World::new(cfg);
    w.enable_stress(1518);
    w.run_until(Time::ZERO + Duration::from_ms(2));
    w.disable_stress();
    w.run_until(Time::ZERO + Duration::from_ms(3));
    lg_obs::trace::set_level(Level::Off);

    let records = lg_obs::trace::drain();
    assert!(!records.is_empty(), "tracing produced records");
    // Pick a corrupt-dropped packet and reconstruct its history.
    let victim = records
        .iter()
        .find(|r| r.kind == Kind::CorruptDrop && r.uid != 0)
        .expect("a corrupt drop at loss rate 1e-2");
    let chain = lg_obs::postmortem::chain(&records, victim.uid);
    let has = |k: Kind| chain.contains(&k);
    assert!(has(Kind::LgStamp), "protected TX stamped: {chain:?}");
    assert!(has(Kind::TxDone), "left the port: {chain:?}");
    assert!(has(Kind::CorruptDrop), "dropped on the wire: {chain:?}");
    assert!(has(Kind::Retx), "link-local retransmission: {chain:?}");
    assert!(has(Kind::WireRx), "a copy crossed the wire: {chain:?}");
    assert!(
        has(Kind::Deliver) || has(Kind::Recovered),
        "recovered and delivered in order: {chain:?}"
    );
    assert!(has(Kind::HostDeliver), "reached the end host: {chain:?}");
    // The causal order holds: stamp before drop, drop before retx,
    // retx before delivery.
    let pos = |k: Kind| chain.iter().position(|&c| c == k).unwrap();
    assert!(pos(Kind::LgStamp) < pos(Kind::CorruptDrop));
    assert!(pos(Kind::CorruptDrop) < pos(Kind::Retx));
    assert!(pos(Kind::Retx) < pos(Kind::HostDeliver));
    // The rendered report names every hop.
    let report = lg_obs::postmortem::report(&records, victim.uid);
    assert!(
        report.contains("corrupt_drop") && report.contains("retx"),
        "{report}"
    );
}
