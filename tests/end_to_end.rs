//! Cross-crate integration tests: the full testbed masking corruption
//! losses from TCP and RDMA endpoints.

use lg_link::{LinkSpeed, LossModel};
use lg_sim::Duration;
use lg_testbed::{fct_experiment, stress_test, FctTransport, Protection};
use lg_transport::CcVariant;

#[test]
fn lg_masks_heavy_loss_from_tcp() {
    let masked = fct_experiment(
        LinkSpeed::G100,
        LossModel::Iid { rate: 1e-2 },
        Protection::Lg,
        FctTransport::Tcp(CcVariant::Dctcp),
        24_387,
        2_000,
        100,
    );
    // even at 1% loss the protected flows never retransmit end-to-end
    assert_eq!(masked.e2e_retx, 0, "LG hid every loss from TCP");
    assert!(
        masked.report.p999_us < 120.0,
        "p99.9 {} us",
        masked.report.p999_us
    );
}

#[test]
fn lg_ordered_mode_is_invisible_to_rdma_go_back_n() {
    let r = fct_experiment(
        LinkSpeed::G100,
        LossModel::Iid { rate: 5e-3 },
        Protection::Lg,
        FctTransport::Rdma,
        65_536,
        1_000,
        101,
    );
    assert_eq!(r.e2e_retx, 0, "no NAK-triggered rewinds under ordered LG");
    assert!(r.report.p999_us < 250.0, "p99.9 {}", r.report.p999_us);
}

#[test]
fn lg_nb_triggers_go_back_n_but_prevents_rto() {
    let nb = fct_experiment(
        LinkSpeed::G100,
        LossModel::Iid { rate: 5e-3 },
        Protection::LgNb,
        FctTransport::Rdma,
        24_387,
        2_000,
        102,
    );
    // out-of-order recovery is visible to RC: rewinds happen...
    assert!(nb.e2e_retx > 0, "NB reordering must trigger go-back-N");
    // ...but the ~1ms RTO tail is gone (tail losses still recovered)
    assert!(
        nb.report.p9999_us < 900.0,
        "p99.99 {} should not show RTO",
        nb.report.p9999_us
    );
}

#[test]
fn improvement_factor_matches_paper_magnitude() {
    // single-packet flows: LG improves p99.9 by tens of x (paper: 51x/66x)
    let lossy = fct_experiment(
        LinkSpeed::G100,
        LossModel::Iid { rate: 2e-3 },
        Protection::Off,
        FctTransport::Tcp(CcVariant::Dctcp),
        143,
        5_000,
        103,
    );
    let masked = fct_experiment(
        LinkSpeed::G100,
        LossModel::Iid { rate: 2e-3 },
        Protection::Lg,
        FctTransport::Tcp(CcVariant::Dctcp),
        143,
        5_000,
        103,
    );
    let gain = lossy.report.p999_us / masked.report.p999_us;
    assert!(gain > 10.0, "p99.9 improvement only {gain:.1}x");
}

#[test]
fn stress_recovers_every_loss_at_all_speeds() {
    for speed in [LinkSpeed::G10, LinkSpeed::G25, LinkSpeed::G100] {
        let r = stress_test(
            speed,
            LossModel::Iid { rate: 2e-3 },
            Protection::Lg,
            Duration::from_ms(30),
            104,
        );
        assert!(r.wire_losses > 0, "{speed}: no losses happened");
        assert_eq!(
            r.unrecovered, 0,
            "{speed}: {} unrecovered of {} losses (timeouts {})",
            r.unrecovered, r.wire_losses, r.timeouts
        );
    }
}

#[test]
fn nb_mode_has_no_rx_buffer_and_no_pauses() {
    let r = stress_test(
        LinkSpeed::G100,
        LossModel::Iid { rate: 1e-3 },
        Protection::LgNb,
        Duration::from_ms(20),
        105,
    );
    assert_eq!(r.rx_buffer_peak, 0, "NB must not use the reordering buffer");
    assert_eq!(r.pauses, 0, "NB has no backpressure");
    assert_eq!(r.unrecovered, 0);
}

#[test]
fn protocol_overhead_is_three_bytes_worth() {
    // clean link, LG active: effective speed loss is just the 3B header
    let r = stress_test(
        LinkSpeed::G25,
        LossModel::None,
        Protection::Lg,
        Duration::from_ms(10),
        106,
    );
    assert!(
        r.effective_speed > 0.995,
        "clean-link effective speed {}",
        r.effective_speed
    );
    assert!(r.effective_speed <= 1.0);
}

#[test]
fn bbr_flows_complete_under_loss_with_lg() {
    let r = fct_experiment(
        LinkSpeed::G100,
        LossModel::Iid { rate: 1e-3 },
        Protection::Lg,
        FctTransport::Tcp(CcVariant::Bbr),
        24_387,
        1_000,
        107,
    );
    assert_eq!(r.e2e_retx, 0);
    assert!(r.report.p999_us < 120.0);
}

#[test]
fn selective_repeat_rdma_beats_go_back_n_under_nb() {
    let gbn = fct_experiment(
        LinkSpeed::G100,
        LossModel::Iid { rate: 5e-3 },
        Protection::LgNb,
        FctTransport::Rdma,
        65_536,
        1_500,
        108,
    );
    let sr = fct_experiment(
        LinkSpeed::G100,
        LossModel::Iid { rate: 5e-3 },
        Protection::LgNb,
        FctTransport::RdmaSelectiveRepeat,
        65_536,
        1_500,
        108,
    );
    assert!(
        sr.e2e_retx < gbn.e2e_retx,
        "selective repeat re-sends less: {} vs {}",
        sr.e2e_retx,
        gbn.e2e_retx
    );
}
