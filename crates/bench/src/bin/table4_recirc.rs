//! Table 4: recirculation overhead as a percentage of a switch pipe's
//! packet-processing capacity, during the line-rate stress test.
//!
//! Usage: `cargo run --release -p lg-bench --bin table4_recirc [--secs 0.3]`

use lg_bench::{arg, banner};
use lg_link::{LinkSpeed, LossModel};
use lg_sim::Duration;
use lg_testbed::{stress_test, Protection};

fn main() {
    let _obs = lg_bench::obs::session("table4_recirc");
    banner(
        "Table 4",
        "recirculation overhead (% of pipe forwarding capacity)",
    );
    let secs: f64 = arg("--secs", 0.3);
    let duration = Duration::from_secs_f64(secs);
    println!(
        "{:<10} {:>10} {:>10} {:>10}",
        "port", "1e-5", "1e-4", "1e-3"
    );
    for speed in [LinkSpeed::G25, LinkSpeed::G100] {
        let mut tx_row = Vec::new();
        let mut rx_row = Vec::new();
        for rate in [1e-5, 1e-4, 1e-3] {
            let r = stress_test(speed, LossModel::Iid { rate }, Protection::Lg, duration, 4);
            tx_row.push(r.tx_recirc_overhead * 100.0);
            rx_row.push(r.rx_recirc_overhead * 100.0);
        }
        println!(
            "{:<10} {:>9.3}% {:>9.3}% {:>9.3}%",
            format!("{} TX", speed.name()),
            tx_row[0],
            tx_row[1],
            tx_row[2]
        );
        println!(
            "{:<10} {:>9.3}% {:>9.3}% {:>9.3}%",
            format!("{} RX", speed.name()),
            rx_row[0],
            rx_row[1],
            rx_row[2]
        );
    }
    println!();
    println!("paper: 0.44–0.66% across ports/speeds/rates — under 1% of pipe capacity.");
}
