//! Hand-written JSON line writer and minimal parser.
//!
//! The vendored `compat/serde` is a no-op marker-trait stand-in (nothing
//! is ever actually serialized through it), so the observability layer
//! writes its JSONL by hand and parses it back with a small recursive-
//! descent parser for schema validation. Output is deterministic: keys are
//! written in insertion order, floats use Rust's shortest-roundtrip
//! `Display`, and nothing platform-dependent enters the stream.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Incremental builder for one JSON object on one line.
#[derive(Debug)]
pub struct JsonLine {
    buf: String,
    first: bool,
}

impl JsonLine {
    /// Start an object: `{`.
    pub fn new() -> JsonLine {
        JsonLine {
            buf: String::from("{"),
            first: true,
        }
    }

    fn key(&mut self, k: &str) {
        if !self.first {
            self.buf.push(',');
        }
        self.first = false;
        write_escaped(&mut self.buf, k);
        self.buf.push(':');
    }

    /// Add a string field.
    pub fn str(&mut self, k: &str, v: &str) -> &mut Self {
        self.key(k);
        write_escaped(&mut self.buf, v);
        self
    }

    /// Add an unsigned integer field.
    pub fn u64(&mut self, k: &str, v: u64) -> &mut Self {
        self.key(k);
        let _ = write!(self.buf, "{v}");
        self
    }

    /// Add a float field. Non-finite values are emitted as `null` (JSON
    /// has no NaN/Inf).
    pub fn f64(&mut self, k: &str, v: f64) -> &mut Self {
        self.key(k);
        if v.is_finite() {
            // Shortest-roundtrip Display, but always mark it as a float so
            // parsers on the other side see a stable type.
            if v == v.trunc() && v.abs() < 1e15 {
                let _ = write!(self.buf, "{v:.1}");
            } else {
                let _ = write!(self.buf, "{v}");
            }
        } else {
            self.buf.push_str("null");
        }
        self
    }

    /// Add a boolean field.
    pub fn bool(&mut self, k: &str, v: bool) -> &mut Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Add a field whose value is already-rendered JSON.
    pub fn raw(&mut self, k: &str, json: &str) -> &mut Self {
        self.key(k);
        self.buf.push_str(json);
        self
    }

    /// Close the object and return the line (no trailing newline).
    pub fn finish(mut self) -> String {
        self.buf.push('}');
        self.buf
    }
}

impl Default for JsonLine {
    fn default() -> Self {
        JsonLine::new()
    }
}

/// Write `s` as a JSON string literal, escaping as needed.
pub fn write_escaped(buf: &mut String, s: &str) {
    buf.push('"');
    for c in s.chars() {
        match c {
            '"' => buf.push_str("\\\""),
            '\\' => buf.push_str("\\\\"),
            '\n' => buf.push_str("\\n"),
            '\r' => buf.push_str("\\r"),
            '\t' => buf.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(buf, "\\u{:04x}", c as u32);
            }
            c => buf.push(c),
        }
    }
    buf.push('"');
}

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object. `BTreeMap` so lookups are by key; duplicate keys keep
    /// the last occurrence (like every mainstream parser).
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Object field lookup (None for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Name of this value's JSON type (for validation error messages).
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Num(_) => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// Parse one JSON document. Returns a message with a byte offset on error.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let mut p = Parser {
        b: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.b.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    b: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&c) = self.b.get(self.pos) {
            if c == b' ' || c == b'\t' || c == b'\n' || c == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b't') => self.lit("true", JsonValue::Bool(true)),
            Some(b'f') => self.lit("false", JsonValue::Bool(false)),
            Some(b'n') => self.lit("null", JsonValue::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected input at byte {}", self.pos)),
        }
    }

    fn lit(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.b[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            if self.pos + 5 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.pos + 1..self.pos + 5])
                                .map_err(|_| "bad \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance by one full UTF-8 char.
                    let rest = std::str::from_utf8(&self.b[self.pos..])
                        .map_err(|_| "invalid utf-8 in string".to_string())?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(map));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_roundtrips_through_parser() {
        let mut l = JsonLine::new();
        l.str("type", "metric")
            .u64("t_ps", 123_456_789)
            .f64("rate", 0.5)
            .f64("whole", 3.0)
            .bool("ok", true)
            .str("weird", "a\"b\\c\nd\u{1}")
            .raw("nested", "{\"x\":1}");
        let line = l.finish();
        let v = parse(&line).unwrap();
        assert_eq!(v.get("type").unwrap().as_str(), Some("metric"));
        assert_eq!(v.get("t_ps").unwrap().as_num(), Some(123_456_789.0));
        assert_eq!(v.get("rate").unwrap().as_num(), Some(0.5));
        assert_eq!(v.get("whole").unwrap().as_num(), Some(3.0));
        assert_eq!(v.get("ok"), Some(&JsonValue::Bool(true)));
        assert_eq!(v.get("weird").unwrap().as_str(), Some("a\"b\\c\nd\u{1}"));
        assert_eq!(
            v.get("nested").unwrap().get("x").unwrap().as_num(),
            Some(1.0)
        );
    }

    #[test]
    fn whole_floats_keep_a_decimal_point() {
        let line = {
            let mut l = JsonLine::new();
            l.f64("x", 42.0);
            l.finish()
        };
        assert_eq!(line, "{\"x\":42.0}");
    }

    #[test]
    fn parser_accepts_standard_forms() {
        let v = parse(" { \"a\" : [1, -2.5, 1e3, null, true, \"s\"] } ").unwrap();
        let arr = match v.get("a").unwrap() {
            JsonValue::Arr(a) => a,
            other => panic!("expected array, got {}", other.type_name()),
        };
        assert_eq!(arr.len(), 6);
        assert_eq!(arr[2].as_num(), Some(1000.0));
    }

    #[test]
    fn parser_rejects_garbage() {
        assert!(parse("{").is_err());
        assert!(parse("{}x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn non_finite_floats_become_null() {
        let line = {
            let mut l = JsonLine::new();
            l.f64("x", f64::NAN);
            l.finish()
        };
        assert_eq!(line, "{\"x\":null}");
    }
}
