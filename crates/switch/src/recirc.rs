//! Recirculation-based packet buffer, modeling the Tofino technique the
//! paper uses for both the sender's Tx buffer and the receiver's
//! reordering buffer (§3.3, Appendix A.2).
//!
//! On Tofino, a buffered packet loops through the pipeline via a
//! recirculation port: each loop takes a fixed latency, and the
//! recirculation port has finite bandwidth (it drains at 100 G regardless
//! of the front-panel port speed — §4/B.1). Rather than simulating every
//! loop as an event (which would be ~10⁸ events/s), we keep entries in an
//! ordered map and account for loop costs analytically: a packet resident
//! for time `T` performed `⌈T / loop_latency⌉` loops, each consuming one
//! pipeline slot. That preserves the two observable quantities — buffer
//! occupancy over time (Fig 14) and recirculation overhead (Table 4) —
//! while keeping the event count proportional to packets.
//!
//! Entries hold [`PktId`] handles plus frame/wire lengths cached at
//! insertion (buffered packets never mutate, so the caches cannot go
//! stale); loop accounting therefore never dereferences the pool.
//!
//! Entries live in struct-of-arrays layout: parallel key-sorted lanes
//! (keys, handles, insertion times, lengths) instead of a `BTreeMap` of
//! entry structs. Keys are near-monotone in practice — the sender's Tx
//! buffer appends strictly increasing sequence indices, the receiver's
//! reordering buffer sees small perturbations — so an insert is a
//! `push_back` in the common case and the cumulative-ACK `remove_up_to`
//! is a prefix drain that scans one contiguous key lane per cache line
//! instead of walking tree nodes.

use crate::budget::MemBudget;
use lg_obs::{MetricSink, Observe};
use lg_packet::{PacketPool, PktId};
use lg_sim::{Duration, Rate, Time};
use std::collections::VecDeque;

/// Default recirculation loop latency (ingress + egress pipeline pass).
pub const DEFAULT_LOOP_LATENCY: Duration = Duration(750_000); // 750 ns
/// Recirculation port drain rate (100 G on Tofino regardless of the
/// front-panel port being protected).
pub const RECIRC_DRAIN_RATE: Rate = Rate::from_gbps(100);
/// The experiments restrict recirculation buffers to 200 KB (§4).
pub const DEFAULT_CAPACITY: u64 = 200 * 1024;

/// Statistics a recirculation buffer accumulates for the overhead tables.
#[derive(Debug, Clone, Copy, Default)]
pub struct RecircStats {
    /// Total pipeline loops performed by all departed packets.
    pub loops: u64,
    /// Total loop-bytes (frame bytes × loops), for bandwidth overhead.
    pub loop_bytes: u64,
    /// Packets that could not be inserted (buffer full).
    pub overflows: u64,
    /// Peak occupancy in bytes.
    pub high_watermark: u64,
}

impl Observe for RecircStats {
    fn observe(&self, m: &mut MetricSink) {
        m.counter("loops", self.loops);
        m.counter("loop_bytes", self.loop_bytes);
        m.counter("overflows", self.overflows);
        m.gauge("high_watermark", self.high_watermark);
    }
}

/// An ordered packet buffer with byte-capacity and loop accounting.
///
/// Keys are caller-maintained monotonically increasing sequence indices
/// (the simulation tracks the protocol's 16-bit + era wire sequence
/// numbers as widened `u64`s internally; the wire headers still carry the
/// real 3-byte form).
#[derive(Debug)]
pub struct RecircBuffer {
    /// Buffered sequence keys, sorted ascending; the other lanes hold
    /// the matching entry fields at the same index.
    keys: VecDeque<u64>,
    ids: VecDeque<PktId>,
    inserted_at: VecDeque<Time>,
    frame_lens: VecDeque<u32>,
    wire_lens: VecDeque<u32>,
    bytes: u64,
    capacity: u64,
    loop_latency: Duration,
    budget: Option<MemBudget>,
    stats: RecircStats,
}

impl RecircBuffer {
    /// A buffer with the given byte capacity.
    pub fn new(capacity: u64) -> RecircBuffer {
        RecircBuffer {
            keys: VecDeque::new(),
            ids: VecDeque::new(),
            inserted_at: VecDeque::new(),
            frame_lens: VecDeque::new(),
            wire_lens: VecDeque::new(),
            bytes: 0,
            capacity,
            loop_latency: DEFAULT_LOOP_LATENCY,
            budget: None,
            stats: RecircStats::default(),
        }
    }

    /// Override the loop latency.
    pub fn with_loop_latency(mut self, d: Duration) -> RecircBuffer {
        self.loop_latency = d;
        self
    }

    /// Charge resident bytes against a shared [`MemBudget`]. A refused
    /// charge is reported as an overflow, exactly like a full buffer.
    pub fn with_budget(mut self, budget: MemBudget) -> RecircBuffer {
        self.budget = Some(budget);
        self
    }

    /// In-place form of [`RecircBuffer::with_budget`]. Must be called
    /// while the buffer is empty so charged and resident bytes agree.
    pub fn set_budget(&mut self, budget: MemBudget) {
        debug_assert!(self.is_empty(), "budget attached to a non-empty buffer");
        self.budget = Some(budget);
    }

    /// Lane index of `key`, if buffered.
    #[inline]
    fn index_of(&self, key: u64) -> Option<usize> {
        // Tx-buffer removals hit the front (cumulative ACK then
        // retransmit of the oldest outstanding), so check it before the
        // general binary search.
        match self.keys.front() {
            Some(&k) if k == key => return Some(0),
            Some(&k) if k > key => return None,
            Some(_) => {}
            None => return None,
        }
        let i = self.keys.partition_point(|&k| k < key);
        (i < self.keys.len() && self.keys[i] == key).then_some(i)
    }

    /// Insert a packet under `key`. On overflow the handle is returned as
    /// an error (still owned by the caller) and the overflow counter
    /// increments.
    pub fn insert(
        &mut self,
        key: u64,
        id: PktId,
        now: Time,
        pool: &PacketPool,
    ) -> Result<(), PktId> {
        let pkt = pool.get(id);
        let frame_len = pkt.frame_len();
        let wire_len = pkt.wire_len();
        if self.bytes + frame_len as u64 > self.capacity {
            self.stats.overflows += 1;
            return Err(id);
        }
        if let Some(b) = &self.budget {
            if !b.try_charge(frame_len as u64) {
                self.stats.overflows += 1;
                return Err(id);
            }
        }
        self.bytes += frame_len as u64;
        self.stats.high_watermark = self.stats.high_watermark.max(self.bytes);
        // Keys are near-monotone: append unless an out-of-order arrival
        // (receiver reordering) has to be filed mid-lane.
        match self.keys.back() {
            Some(&b) if b > key => {
                let i = self.keys.partition_point(|&k| k < key);
                debug_assert!(self.keys[i] != key, "duplicate recirc key {key}");
                self.keys.insert(i, key);
                self.ids.insert(i, id);
                self.inserted_at.insert(i, now);
                self.frame_lens.insert(i, frame_len);
                self.wire_lens.insert(i, wire_len);
            }
            back => {
                debug_assert!(back != Some(&key), "duplicate recirc key {key}");
                self.keys.push_back(key);
                self.ids.push_back(id);
                self.inserted_at.push_back(now);
                self.frame_lens.push_back(frame_len);
                self.wire_lens.push_back(wire_len);
            }
        }
        Ok(())
    }

    /// Loop accounting for the entry at lane index `i` as it departs.
    fn account_departure(&mut self, i: usize, now: Time) {
        let resident = now.saturating_since(self.inserted_at[i]);
        let loops = resident
            .as_ps()
            .div_ceil(self.loop_latency.as_ps().max(1))
            .max(1);
        self.stats.loops += loops;
        self.stats.loop_bytes += loops * self.wire_lens[i] as u64;
        let frame_len = self.frame_lens[i] as u64;
        self.bytes -= frame_len;
        if let Some(b) = &self.budget {
            b.release(frame_len);
        }
    }

    /// Drop the entry at lane index `i` from every lane, returning its
    /// packet handle.
    fn remove_at(&mut self, i: usize) -> PktId {
        self.keys.remove(i);
        self.inserted_at.remove(i);
        self.frame_lens.remove(i);
        self.wire_lens.remove(i);
        self.ids.remove(i).expect("lanes in lockstep")
    }

    /// Remove the packet stored under `key`, if any; ownership passes to
    /// the caller.
    pub fn remove(&mut self, key: u64, now: Time) -> Option<PktId> {
        let i = self.index_of(key)?;
        self.account_departure(i, now);
        Some(self.remove_at(i))
    }

    /// Remove all packets with `key <= upto` and release them to the pool,
    /// returning how many were freed. Used by the Tx buffer to free
    /// acknowledged packets (the callers never inspect the packets), so
    /// this runs on every cumulative ACK and must not allocate.
    pub fn remove_up_to(&mut self, upto: u64, now: Time, pool: &mut PacketPool) -> usize {
        let mut freed = 0;
        while let Some(&k) = self.keys.front() {
            if k > upto {
                break;
            }
            self.account_departure(0, now);
            self.keys.pop_front();
            self.inserted_at.pop_front();
            self.frame_lens.pop_front();
            self.wire_lens.pop_front();
            let id = self.ids.pop_front().expect("lanes in lockstep");
            pool.release(id);
            freed += 1;
        }
        freed
    }

    /// Peek the smallest key currently buffered.
    pub fn min_key(&self) -> Option<u64> {
        self.keys.front().copied()
    }

    /// Handle of the packet stored under `key` without removing it (used
    /// for retransmission: the buffered original stays until ACKed).
    pub fn get(&self, key: u64) -> Option<PktId> {
        self.index_of(key).map(|i| self.ids[i])
    }

    /// Whether `key` is buffered.
    pub fn contains(&self, key: u64) -> bool {
        self.index_of(key).is_some()
    }

    /// Current occupancy in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Current occupancy in packets.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Byte capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// The loop latency used for accounting.
    pub fn loop_latency(&self) -> Duration {
        self.loop_latency
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> RecircStats {
        self.stats
    }

    /// Recirculation overhead as a fraction of a pipeline's packet-
    /// processing capacity over `elapsed` (Table 4 reports ≈0.45–0.66% at
    /// line rate with `pipe_capacity_pps` ≈ 1.5 Gpps for Tofino).
    pub fn overhead_fraction(&self, elapsed: Duration, pipe_capacity_pps: f64) -> f64 {
        if elapsed == Duration::ZERO {
            return 0.0;
        }
        let loops_per_sec = self.stats.loops as f64 / elapsed.as_secs_f64();
        loops_per_sec / pipe_capacity_pps
    }
}

impl Observe for RecircBuffer {
    fn observe(&self, m: &mut MetricSink) {
        self.stats.observe(m);
        m.gauge("bytes", self.bytes);
        m.gauge("pkts", self.keys.len() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_packet::{NodeId, Packet};

    fn pkt(pool: &mut PacketPool, len: u32) -> PktId {
        pool.insert(Packet::raw(NodeId(0), NodeId(1), len, Time::ZERO))
    }

    #[test]
    fn insert_remove_accounting() {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(1_000);
        let (p1, p2) = (pkt(&mut pool, 400), pkt(&mut pool, 400));
        b.insert(1, p1, Time::ZERO, &pool).unwrap();
        b.insert(2, p2, Time::ZERO, &pool).unwrap();
        assert_eq!(b.bytes(), 800);
        assert!(b.contains(1));
        let p = b.remove(1, Time::from_us(1)).unwrap();
        assert_eq!(pool.get(p).frame_len(), 400);
        assert_eq!(b.bytes(), 400);
        assert!(b.remove(1, Time::from_us(1)).is_none());
    }

    #[test]
    fn overflow_rejected_and_counted() {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(500);
        let (p1, p2) = (pkt(&mut pool, 400), pkt(&mut pool, 400));
        b.insert(1, p1, Time::ZERO, &pool).unwrap();
        let back = b.insert(2, p2, Time::ZERO, &pool).unwrap_err();
        assert_eq!(pool.get(back).frame_len(), 400);
        assert_eq!(b.stats().overflows, 1);
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn remove_up_to_frees_prefix_in_order() {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(10_000);
        for k in [5u64, 1, 3, 9] {
            let p = pkt(&mut pool, 100);
            b.insert(k, p, Time::ZERO, &pool).unwrap();
        }
        let freed = b.remove_up_to(5, Time::from_us(1), &mut pool);
        assert_eq!(freed, 3);
        for k in [1, 3, 5] {
            assert!(!b.contains(k), "key {k} freed");
        }
        assert_eq!(b.len(), 1);
        assert_eq!(b.min_key(), Some(9));
        assert_eq!(pool.live(), 1, "freed packets released to the pool");
    }

    #[test]
    fn soa_lane_entries_within_cache_budget() {
        // SoA regression guard: every lane entry must stay within 16
        // bytes so one cache line carries at least 4 consecutive entries.
        assert_eq!(std::mem::size_of::<u64>(), 8); // keys
        assert_eq!(std::mem::size_of::<PktId>(), 8); // ids
        assert_eq!(std::mem::size_of::<Time>(), 8); // inserted_at
        assert_eq!(std::mem::size_of::<u32>(), 4); // frame/wire lens
    }

    #[test]
    fn out_of_order_inserts_keep_keys_sorted() {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(10_000);
        for k in [5u64, 1, 9, 3, 7] {
            let p = pkt(&mut pool, 100);
            b.insert(k, p, Time::ZERO, &pool).unwrap();
        }
        assert_eq!(b.min_key(), Some(1));
        for k in [1u64, 3, 5, 7, 9] {
            assert!(b.contains(k));
            assert!(b.get(k).is_some());
        }
        assert!(!b.contains(2));
        assert!(!b.contains(0), "below the minimum key");
        assert!(!b.contains(10), "above the maximum key");
        // Point removal mid-lane keeps the rest addressable.
        assert!(b.remove(5, Time::ZERO).is_some());
        assert!(!b.contains(5));
        assert_eq!(b.len(), 4);
        assert_eq!(b.remove_up_to(7, Time::ZERO, &mut pool), 3);
        assert_eq!(b.min_key(), Some(9));
    }

    #[test]
    fn budget_denial_reports_overflow() {
        let mut pool = PacketPool::new();
        let budget = crate::budget::MemBudget::new(500);
        let mut b = RecircBuffer::new(10_000).with_budget(budget.clone());
        let (p1, p2) = (pkt(&mut pool, 400), pkt(&mut pool, 400));
        b.insert(1, p1, Time::ZERO, &pool).unwrap();
        let back = b.insert(2, p2, Time::ZERO, &pool).unwrap_err();
        assert_eq!(pool.get(back).frame_len(), 400, "caller keeps the packet");
        assert_eq!(b.stats().overflows, 1);
        assert_eq!(budget.denials(), 1);
        // Departure releases the charge back to the shared budget.
        b.remove(1, Time::from_us(1));
        assert_eq!(budget.used(), 0);
        assert!(b.insert(2, p2, Time::from_us(1), &pool).is_ok());
    }

    #[test]
    fn loop_accounting_scales_with_residency() {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(10_000).with_loop_latency(Duration::from_ns(750));
        let p = pkt(&mut pool, 1518);
        b.insert(1, p, Time::ZERO, &pool).unwrap();
        // resident 7.5 us = 10 loops
        b.remove(1, Time::from_ns(7_500));
        assert_eq!(b.stats().loops, 10);
        assert_eq!(b.stats().loop_bytes, 10 * 1538);
    }

    #[test]
    fn minimum_one_loop_even_for_instant_removal() {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(10_000);
        let p = pkt(&mut pool, 100);
        b.insert(1, p, Time::ZERO, &pool).unwrap();
        b.remove(1, Time::ZERO);
        assert_eq!(b.stats().loops, 1);
    }

    #[test]
    fn high_watermark_persists() {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(10_000);
        let p1 = pkt(&mut pool, 5_000);
        b.insert(1, p1, Time::ZERO, &pool).unwrap();
        b.remove(1, Time::from_us(1));
        let p2 = pkt(&mut pool, 100);
        b.insert(2, p2, Time::from_us(2), &pool).unwrap();
        assert_eq!(b.stats().high_watermark, 5_000);
    }

    #[test]
    fn overhead_fraction_math() {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(10_000).with_loop_latency(Duration::from_ns(1000));
        let p = pkt(&mut pool, 100);
        b.insert(1, p, Time::ZERO, &pool).unwrap();
        b.remove(1, Time::from_us(1)); // 1 loop... resident 1us/1us = 1 loop
                                       // 1 loop over 1 us = 1e6 loops/s; at 1e9 pps capacity = 0.1%
        let f = b.overhead_fraction(Duration::from_us(1), 1e9);
        assert!((f - 1e-3).abs() < 1e-9, "{f}");
    }
}
