//! Conservative-lookahead sharded execution of event-driven worlds.
//!
//! [`par_map`](crate::par_map) parallelizes *across* independent runs;
//! this module parallelizes *inside* one run. The topology is
//! partitioned into shards, each owning its own event queue and all
//! state of its partition class, and the shards advance in lockstep
//! through *windows* of simulated time:
//!
//! 1. The coordinator finds `t_min`, the earliest pending timestamp
//!    across all shards (idle gaps are skipped, not stepped through).
//! 2. Every shard executes its local events in `[t_min, t_min + W)`
//!    concurrently, where `W` is the *lookahead*: a lower bound on the
//!    latency of every cross-shard interaction. Interactions destined
//!    for another shard are not applied directly — they are appended to
//!    a per-shard outbox as [`ShardMsg`]s stamped with their arrival
//!    time.
//! 3. At the window barrier the coordinator exchanges the outboxes:
//!    messages are sorted by `(at, seq, src_shard)` and distributed into
//!    persistent per-shard *inboxes*; each shard injects its inbox at
//!    the start of the next window (on whichever worker claims it), so
//!    injection work scales out with the shards instead of serializing
//!    on the coordinator, and no mailbox vector is allocated per window
//!    — outboxes, the gather buffer and the inboxes all keep their
//!    capacity for the whole run.
//!
//! **Why this is safe (lookahead argument).** Let the window be
//! `[t_min, t_min + W)`. A message emitted by an event at time `t`
//! inside the window arrives at `t + L` for some cross-shard latency
//! `L >= W`, so its arrival time satisfies `t + L >= t_min + W`, which
//! is at or after the window's end. No shard can therefore miss (or see
//! early) an interaction generated during the window it is currently
//! executing: every message is injected at the barrier *before* any
//! window that could consume it starts. The exchange being sorted and
//! serial makes the injection order — and hence the destination
//! queue's tie-break `seq` assignment — independent of thread
//! scheduling, so a sharded run is deterministic and, when the shard
//! worlds themselves order same-instant work by shard-layout-invariant
//! keys, byte-identical at any `--shards`/`--threads` combination.
//!
//! The runner keeps a persistent worker pool (spawned once per run, not
//! per window) synchronized with a [`std::sync::Barrier`]; shards are
//! claimed per window through an atomic work index exactly like
//! [`par_map`](crate::par_map), so a slow shard never idles the pool.
//!
//! **Per-shard telemetry discipline.** The same argument extends to
//! observability state: a shard world may record traces, health events,
//! or counters locally (no synchronization inside the window), provided
//! every recorded field is a *global* key — entity ids, simulated
//! timestamps, packet uids — and never a shard index or worker-local
//! ordinal. Collect-time concatenation sorted by those keys is then a
//! pure function of the simulated execution, so the merged streams are
//! as layout-invariant as the simulation itself. Wall-clock measurements
//! (profiling) are the deliberate exception: they merge additively and
//! must be excluded from byte-identical comparisons. `lg_fabric`'s
//! packet simulator is the worked example of both rules.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Barrier;

use crate::time::{Duration, Time};

/// A cross-shard interaction, carried from the shard that generated it
/// to the shard that owns the destination entity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardMsg<M> {
    /// Simulated arrival time; must be at least one lookahead after the
    /// instant the message was generated.
    pub at: Time,
    /// Emission order within the source shard's window (assigned by the
    /// source via its outbox position). Part of the exchange sort key so
    /// ties at equal `at` resolve by generation order, not scheduling.
    pub seq: u64,
    /// Shard that generated the message.
    pub src_shard: u32,
    /// Shard that must apply it.
    pub dst_shard: u32,
    /// World-specific content (typically a packet plus a destination
    /// entity id).
    pub payload: M,
}

/// A partition of a world that can execute windows of simulated time
/// locally and exchange cross-shard interactions as messages.
pub trait ShardWorld: Send {
    /// Cross-shard message payload.
    type Msg: Send;

    /// Earliest pending local timestamp, or `None` when idle.
    fn next_time(&mut self) -> Option<Time>;

    /// Execute every local event with timestamp `<= until`, appending
    /// cross-shard interactions to `out` (with `seq` assigned in
    /// emission order). Returns the number of events executed.
    fn run_window(&mut self, until: Time, out: &mut Vec<ShardMsg<Self::Msg>>) -> u64;

    /// Apply a message exchanged at a window barrier. Called at the
    /// start of the first window after the exchange, on whichever worker
    /// owns this shard for that window, in deterministic `(at, seq,
    /// src_shard)` order. The message's `at` is strictly after the
    /// window it was generated in, so implementations can simply
    /// schedule it.
    fn inject(&mut self, msg: ShardMsg<Self::Msg>);
}

/// Aggregate accounting for one sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Synchronization windows executed.
    pub windows: u64,
    /// Events executed across all shards.
    pub events: u64,
    /// Cross-shard messages exchanged.
    pub messages: u64,
    /// Largest single-window exchange (mailbox sizing diagnostic).
    pub max_window_messages: u64,
}

/// Inclusive end of the window opening at `t_min`: one lookahead minus
/// one picosecond, clamped below the shutdown sentinel.
fn window_end(t_min: Time, lookahead: Duration) -> Time {
    debug_assert!(lookahead.as_ps() > 0);
    Time::from_ps(
        t_min
            .as_ps()
            .saturating_add(lookahead.as_ps() - 1)
            .min(u64::MAX - 1),
    )
}

/// Gather the outboxes into `mail` in deterministic exchange order:
/// `(at, seq, src_shard)`, so the injection order — and hence every
/// destination queue's tie-break `seq` assignment — never depends on
/// thread scheduling. Returns the number of messages gathered.
fn gather_sorted<M>(outboxes: &mut [Vec<ShardMsg<M>>], mail: &mut Vec<ShardMsg<M>>) -> u64 {
    mail.clear();
    for out in outboxes.iter_mut() {
        mail.append(out);
    }
    mail.sort_unstable_by_key(|m| (m.at, m.seq, m.src_shard));
    mail.len() as u64
}

/// Assert the lookahead contract for a message exchanged at the end of
/// the window closing at `until`.
fn check_lookahead<M>(msg: &ShardMsg<M>, until: Time, n_shards: usize) {
    assert!(
        msg.at > until,
        "cross-shard message at {:?} violates the lookahead contract (window end {:?})",
        msg.at,
        until,
    );
    assert!(
        (msg.dst_shard as usize) < n_shards,
        "message to unknown shard {}",
        msg.dst_shard
    );
}

/// Earliest pending timestamp of one shard, counting both its local
/// queue and its undelivered inbox (sorted ascending, so the head is
/// the minimum).
fn shard_next_time<W: ShardWorld>(shard: &mut W, inbox: &[ShardMsg<W::Msg>]) -> Option<Time> {
    let local = shard.next_time();
    let mailed = inbox.first().map(|m| m.at);
    match (local, mailed) {
        (Some(a), Some(b)) => Some(a.min(b)),
        (a, b) => a.or(b),
    }
}

/// Drain a shard's inbox into it. Inboxes hold each shard's slice of the
/// globally sorted exchange, so per-shard injection order — and hence the
/// destination queue's tie-break `seq` assignment — matches the old
/// coordinator-serial exchange exactly.
fn drain_inbox<W: ShardWorld>(shard: &mut W, inbox: &mut Vec<ShardMsg<W::Msg>>) {
    for msg in inbox.drain(..) {
        shard.inject(msg);
    }
}

/// Run `shards` to completion (or past `horizon`) under conservative
/// lookahead synchronization on up to `threads` worker threads.
///
/// `lookahead` must be a positive lower bound on the latency of every
/// cross-shard interaction; the exchange asserts the contract on each
/// message. Windows open at the earliest pending timestamp (idle spans
/// cost nothing) and close one lookahead later. The run ends when every
/// shard is idle with no messages in flight, or when the next window
/// would open after `horizon` (events at exactly `horizon` still run).
///
/// Results are identical at any `threads`; `threads <= 1` runs
/// everything on the calling thread.
pub fn run_sharded<W: ShardWorld>(
    shards: &mut [W],
    lookahead: Duration,
    horizon: Time,
    threads: usize,
) -> ShardStats {
    assert!(lookahead.as_ps() > 0, "lookahead must be positive");
    if shards.is_empty() {
        return ShardStats::default();
    }
    let threads = threads.clamp(1, shards.len());
    if threads == 1 {
        run_serial(shards, lookahead, horizon)
    } else {
        run_parallel(shards, lookahead, horizon, threads)
    }
}

fn run_serial<W: ShardWorld>(shards: &mut [W], lookahead: Duration, horizon: Time) -> ShardStats {
    let n = shards.len();
    let mut outboxes: Vec<Vec<ShardMsg<W::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut inboxes: Vec<Vec<ShardMsg<W::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut mail = Vec::new();
    let mut stats = ShardStats::default();
    loop {
        let t_min = shards
            .iter_mut()
            .zip(inboxes.iter())
            .filter_map(|(s, inbox)| shard_next_time(s, inbox))
            .min();
        let Some(t_min) = t_min.filter(|&t| t <= horizon) else {
            break;
        };
        let until = window_end(t_min, lookahead);
        for ((shard, inbox), out) in shards
            .iter_mut()
            .zip(inboxes.iter_mut())
            .zip(outboxes.iter_mut())
        {
            drain_inbox(shard, inbox);
            stats.events += shard.run_window(until, out);
        }
        let m = gather_sorted(&mut outboxes, &mut mail);
        for msg in mail.drain(..) {
            check_lookahead(&msg, until, n);
            inboxes[msg.dst_shard as usize].push(msg);
        }
        stats.windows += 1;
        stats.messages += m;
        stats.max_window_messages = stats.max_window_messages.max(m);
    }
    // A horizon cut can strand the final exchange in the inboxes; flush
    // it so post-run shard state matches the old barrier-time injection.
    for (shard, inbox) in shards.iter_mut().zip(inboxes.iter_mut()) {
        drain_inbox(shard, inbox);
    }
    stats
}

/// Raw-pointer slots for per-shard state touched by exactly one worker
/// per window (claimed via atomic index) or by the coordinator while
/// the workers are parked at a barrier. Same ownership discipline as
/// `par_map`'s result slots, extended to alternating phases: the
/// barrier crossings provide the happens-before edges between the
/// workers' window phase and the coordinator's exchange phase.
struct Slots<T>(Vec<*mut T>);
unsafe impl<T: Send> Sync for Slots<T> {}
impl<T> Slots<T> {
    fn get(&self, i: usize) -> *mut T {
        self.0[i]
    }
}

/// Shutdown sentinel published through the window-bound atomic; real
/// window ends are clamped below it by `window_end`.
const SHUTDOWN: u64 = u64::MAX;

fn run_parallel<W: ShardWorld>(
    shards: &mut [W],
    lookahead: Duration,
    horizon: Time,
    threads: usize,
) -> ShardStats {
    let n = shards.len();
    let mut outboxes: Vec<Vec<ShardMsg<W::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut inboxes: Vec<Vec<ShardMsg<W::Msg>>> = (0..n).map(|_| Vec::new()).collect();
    let mut events: Vec<u64> = vec![0; n];
    let mut mail = Vec::new();
    let mut stats = ShardStats::default();

    let shard_slots = Slots(shards.iter_mut().map(|s| s as *mut W).collect());
    let out_slots = Slots(outboxes.iter_mut().map(|o| o as *mut Vec<_>).collect());
    let in_slots = Slots(inboxes.iter_mut().map(|i| i as *mut Vec<_>).collect());
    let event_slots = Slots(events.iter_mut().map(|e| e as *mut u64).collect());
    let barrier = Barrier::new(threads + 1);
    let claim = AtomicUsize::new(0);
    let until_ps = AtomicU64::new(0);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            let (barrier, claim, until_ps) = (&barrier, &claim, &until_ps);
            let (shard_slots, out_slots, in_slots, event_slots) =
                (&shard_slots, &out_slots, &in_slots, &event_slots);
            scope.spawn(move || loop {
                // Window phase: the coordinator has published the bound
                // and reset the claim index before releasing this
                // barrier; each shard is claimed by exactly one worker,
                // which first injects the shard's inbox (its slice of
                // last window's sorted exchange) and then runs the
                // window — injection scales out with the shards.
                barrier.wait();
                let until = until_ps.load(Ordering::Relaxed);
                if until == SHUTDOWN {
                    break;
                }
                loop {
                    let i = claim.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let shard = unsafe { &mut *shard_slots.get(i) };
                    let inbox = unsafe { &mut *in_slots.get(i) };
                    drain_inbox(shard, inbox);
                    let out = unsafe { &mut *out_slots.get(i) };
                    let ran = shard.run_window(Time::from_ps(until), out);
                    unsafe { *event_slots.get(i) += ran };
                }
                // Exchange phase: workers park here while the
                // coordinator owns every shard.
                barrier.wait();
            });
        }

        // Coordinator. Between the end barrier of one window and the
        // start barrier of the next, all workers are parked, so the
        // coordinator may touch every shard through the slots.
        loop {
            let t_min = {
                let mut t_min = None::<Time>;
                for i in 0..n {
                    let shard = unsafe { &mut *shard_slots.get(i) };
                    let inbox = unsafe { &mut *in_slots.get(i) };
                    if let Some(t) = shard_next_time(shard, inbox) {
                        t_min = Some(t_min.map_or(t, |m: Time| m.min(t)));
                    }
                }
                t_min
            };
            let Some(t_min) = t_min.filter(|&t| t <= horizon) else {
                until_ps.store(SHUTDOWN, Ordering::Relaxed);
                barrier.wait();
                break;
            };
            let until = window_end(t_min, lookahead);
            claim.store(0, Ordering::Relaxed);
            until_ps.store(until.as_ps(), Ordering::Relaxed);
            barrier.wait(); // open the window
            barrier.wait(); // wait for every shard to finish it
            let m = {
                // Gather through the same per-element slots the workers
                // use — the barrier crossing above handed every shard,
                // outbox and inbox back to the coordinator — and
                // distribute the sorted exchange into the inboxes for
                // the claiming workers to inject next window.
                for i in 0..n {
                    let out = unsafe { &mut *out_slots.get(i) };
                    mail.append(out);
                }
                mail.sort_unstable_by_key(|m| (m.at, m.seq, m.src_shard));
                let m = mail.len() as u64;
                for msg in mail.drain(..) {
                    check_lookahead(&msg, until, n);
                    let inbox = unsafe { &mut *in_slots.get(msg.dst_shard as usize) };
                    inbox.push(msg);
                }
                m
            };
            stats.windows += 1;
            stats.messages += m;
            stats.max_window_messages = stats.max_window_messages.max(m);
        }
    });

    stats.events = events.iter().sum();
    // A horizon cut can strand the final exchange in the inboxes; flush
    // it so post-run shard state matches the old barrier-time injection.
    for (shard, inbox) in shards.iter_mut().zip(inboxes.iter_mut()) {
        drain_inbox(shard, inbox);
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventQueue;

    /// Toy shard: a ring of counters. Each shard owns `width` cells; a
    /// cell that receives a token at `t` records `(t, token)` and
    /// forwards `token + 1` to the next cell (possibly in the next
    /// shard) after exactly `latency`, until the token value reaches
    /// `limit`.
    struct RingShard {
        id: u32,
        width: u64,
        total: u64,
        latency: Duration,
        limit: u64,
        q: EventQueue<u64>,
        log: Vec<(u64, u64)>,
    }

    impl RingShard {
        fn cell_of(&self, token: u64) -> u64 {
            token % self.total
        }
    }

    impl ShardWorld for RingShard {
        type Msg = u64;

        fn next_time(&mut self) -> Option<Time> {
            self.q.peek_time()
        }

        fn run_window(&mut self, until: Time, out: &mut Vec<ShardMsg<u64>>) -> u64 {
            let mut ran = 0;
            while let Some((now, token)) = self.q.pop_if_before(until) {
                ran += 1;
                self.log.push((now.as_ps(), token));
                let next = token + 1;
                if next >= self.limit {
                    continue;
                }
                let dst = (self.cell_of(next) / self.width) as u32;
                let at = now + self.latency;
                if dst == self.id {
                    self.q.schedule_at(at, next);
                } else {
                    out.push(ShardMsg {
                        at,
                        seq: out.len() as u64,
                        src_shard: self.id,
                        dst_shard: dst,
                        payload: next,
                    });
                }
            }
            #[cfg(debug_assertions)]
            self.q.check_invariants();
            ran
        }

        fn inject(&mut self, msg: ShardMsg<u64>) {
            self.q.schedule_at(msg.at, msg.payload);
        }
    }

    fn ring(shards: u32, width: u64, limit: u64, latency: Duration) -> Vec<RingShard> {
        let total = shards as u64 * width;
        (0..shards)
            .map(|id| {
                let mut s = RingShard {
                    id,
                    width,
                    total,
                    latency,
                    limit,
                    q: EventQueue::new(),
                    log: Vec::new(),
                };
                // Token 0 starts at cell 0 (shard 0) at t = 5 ns.
                if id == 0 {
                    s.q.schedule_at(Time::from_ns(5), 0);
                }
                s
            })
            .collect()
    }

    fn run_ring(shards: u32, threads: usize) -> (Vec<Vec<(u64, u64)>>, ShardStats) {
        let latency = Duration::from_ns(3);
        let mut ring = ring(shards, 4, 1000, latency);
        let stats = run_sharded(&mut ring, latency, Time::MAX, threads);
        (ring.into_iter().map(|s| s.log).collect(), stats)
    }

    #[test]
    fn ring_visits_every_token_once() {
        let (logs, stats) = run_ring(4, 1);
        let mut all: Vec<(u64, u64)> = logs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(stats.events, 1000);
        assert_eq!(all.len(), 1000);
        for (i, &(at, token)) in all.iter().enumerate() {
            assert_eq!(token, i as u64);
            assert_eq!(at, 5_000 + i as u64 * 3_000);
        }
        // A handoff crosses a shard boundary when the token leaves the
        // last cell of a width-4 block: every fourth of the 999
        // handoffs (tokens 3, 7, ..., 995).
        assert_eq!(stats.messages, 249);
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let serial = run_ring(4, 1);
        for threads in [2, 3, 4, 8] {
            assert_eq!(run_ring(4, threads), serial, "threads={threads}");
        }
    }

    #[test]
    fn single_shard_needs_no_exchange() {
        let (logs, stats) = run_ring(1, 1);
        assert_eq!(stats.messages, 0);
        assert_eq!(logs[0].len(), 1000);
    }

    #[test]
    fn idle_gaps_are_skipped_not_stepped() {
        // One event per millisecond: with a 3 ns lookahead a stepping
        // coordinator would need ~333k windows per gap; idle-skip needs
        // one per event.
        let mut shards = ring(2, 4, 1, Duration::from_ns(3));
        shards[0].q.schedule_at(Time::from_ms(50), 0);
        let stats = run_sharded(&mut shards, Duration::from_ns(3), Time::MAX, 2);
        assert_eq!(stats.events, 2);
        assert_eq!(stats.windows, 2);
    }

    #[test]
    fn horizon_cuts_the_run() {
        let latency = Duration::from_ns(3);
        let mut shards = ring(2, 4, 1000, latency);
        // Tokens fire at 5ns, 8ns, 11ns, ... — a 10 ns horizon admits
        // the windows opening at 5 and 8 (the 8 ns window also runs the
        // 11 ns event: 8 + 3 - 1 ps window end is exclusive of 11 ns,
        // so exactly the first two windows run).
        let stats = run_sharded(&mut shards, latency, Time::from_ns(10), 1);
        assert!(stats.events >= 2 && stats.events < 1000, "{stats:?}");
    }

    #[test]
    #[should_panic(expected = "lookahead contract")]
    fn lookahead_violation_is_caught() {
        let latency = Duration::from_ns(3);
        let mut shards = ring(2, 4, 1000, latency);
        // Claim a lookahead larger than the actual handoff latency:
        // the first cross-shard message lands inside the window.
        run_sharded(&mut shards, Duration::from_ns(50), Time::MAX, 1);
    }
}
