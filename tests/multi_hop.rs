//! Multiple corrupting links on one path (paper §5): LinkGuardian
//! instances operate per link, independently; the end-to-end benefit
//! compounds because the unprotected baseline gets *worse* with each
//! corrupting hop.

use lg_link::{LinkSpeed, LossModel};
use lg_testbed::{ChainApp, ChainConfig, ChainWorld};
use lg_transport::CcVariant;

fn run_chain(losses: Vec<LossModel>, protected: bool, trials: u32, seed: u64) -> (f64, u64, u64) {
    let n = losses.len();
    let mut cfg = ChainConfig::protected_chain(
        LinkSpeed::G100,
        losses,
        ChainApp::TcpTrials {
            variant: CcVariant::Dctcp,
            msg_len: 24_387,
            trials,
        },
    );
    cfg.protected = vec![protected; n];
    cfg.seed = seed;
    let mut w = ChainWorld::new(cfg);
    w.run_to_completion();
    assert_eq!(w.fct.len() as u32, trials, "all trials complete");
    let p999 = w.fct.quantile_us(0.999);
    (p999, w.e2e_retx, w.total_recovered())
}

#[test]
fn two_corrupting_hops_fully_masked() {
    let losses = vec![LossModel::Iid { rate: 2e-3 }, LossModel::Iid { rate: 2e-3 }];
    let (p999, e2e, recovered) = run_chain(losses, true, 2_000, 501);
    assert_eq!(e2e, 0, "both hops' losses recovered link-locally");
    assert!(recovered > 50, "recoveries happened on the chain");
    assert!(p999 < 150.0, "p99.9 {p999} us near the no-loss level");
}

#[test]
fn unprotected_multi_hop_is_worse_than_single_hop() {
    // §5: "multiple corrupting links on a path would lead to a greater
    // fraction of the flows suffering corruption packet loss".
    let one = vec![LossModel::Iid { rate: 2e-3 }, LossModel::None];
    let two = vec![LossModel::Iid { rate: 2e-3 }, LossModel::Iid { rate: 2e-3 }];
    let (_, retx_one, _) = run_chain(one, false, 3_000, 502);
    let (_, retx_two, _) = run_chain(two, false, 3_000, 502);
    assert!(
        retx_two > retx_one,
        "two corrupting hops ({retx_two}) must beat one ({retx_one})"
    );
}

#[test]
fn three_hop_rdma_with_mixed_protection() {
    // protect only the corrupting middle hop; healthy outer hops bare
    let losses = vec![
        LossModel::None,
        LossModel::Iid { rate: 2e-3 },
        LossModel::None,
    ];
    let mut cfg = ChainConfig::protected_chain(
        LinkSpeed::G100,
        losses,
        ChainApp::RdmaTrials {
            msg_len: 24_387,
            trials: 1_500,
        },
    );
    cfg.protected = vec![false, true, false];
    cfg.seed = 503;
    let mut w = ChainWorld::new(cfg);
    assert_eq!(w.n_switches(), 4);
    w.run_to_completion();
    assert_eq!(w.fct.len(), 1_500);
    assert_eq!(w.e2e_retx, 0, "go-back-N never triggered");
    assert!(w.fct.quantile_us(0.999) < 200.0);
}

#[test]
fn chain_world_clean_path_baseline() {
    let losses = vec![LossModel::None, LossModel::None];
    let (p999, e2e, recovered) = run_chain(losses, true, 500, 504);
    assert_eq!(e2e, 0);
    assert_eq!(recovered, 0);
    // 3 switches: RTT slightly above the 2-switch testbed's ~62 us FCT
    assert!(p999 < 120.0, "p99.9 {p999}");
}
