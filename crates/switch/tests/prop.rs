//! Property tests for the switch building blocks.

use lg_packet::{NodeId, Packet, PacketPool, PktId};
use lg_sim::Time;
use lg_switch::{ByteQueue, Class, EgressPort, EnqueueOutcome, RecircBuffer};
use proptest::prelude::*;

fn pkt(pool: &mut PacketPool, len: u32) -> PktId {
    pool.insert(Packet::raw(
        NodeId(0),
        NodeId(1),
        len.clamp(64, 9000),
        Time::ZERO,
    ))
}

proptest! {
    /// Byte accounting: after any sequence of pushes and pops, the queue's
    /// byte count equals the sum of frame lengths of resident packets, and
    /// capacity is never exceeded. Dropped and popped packets go back to
    /// the pool, so at the end `live == resident`.
    #[test]
    fn byte_queue_accounting(ops in proptest::collection::vec((any::<bool>(), 64u32..2000), 1..200)) {
        let cap = 20_000u64;
        let mut pool = PacketPool::new();
        let mut q = ByteQueue::new(cap);
        let mut model: std::collections::VecDeque<u32> = Default::default();
        for (push, len) in ops {
            if push {
                let id = pkt(&mut pool, len);
                let flen = pool.get(id).frame_len();
                match q.push(id, &mut pool) {
                    EnqueueOutcome::Stored { .. } => model.push_back(flen),
                    EnqueueOutcome::Dropped => {
                        prop_assert!(model.iter().map(|&l| l as u64).sum::<u64>() + flen as u64 > cap);
                    }
                }
            } else if let Some(id) = q.pop() {
                let expect = model.pop_front().expect("model in sync");
                prop_assert_eq!(pool.get(id).frame_len(), expect, "FIFO order");
                pool.release(id);
            } else {
                prop_assert!(model.is_empty());
            }
            let bytes: u64 = model.iter().map(|&l| l as u64).sum();
            prop_assert_eq!(q.bytes(), bytes);
            prop_assert!(q.bytes() <= cap);
            prop_assert_eq!(pool.live(), q.len(), "no leaked packets");
        }
    }

    /// Strict priority: whatever the interleaving of enqueues, a dequeue
    /// never returns a lower-priority packet while a higher-priority one
    /// waits, and pausing a class removes only that class.
    #[test]
    fn strict_priority_invariant(
        ops in proptest::collection::vec((0u8..3, 64u32..1500), 1..100),
        pause_normal in any::<bool>(),
    ) {
        let mut pool = PacketPool::new();
        let mut port = EgressPort::new();
        let mut counts = [0i64; 3];
        for (c, len) in &ops {
            let class = [Class::Control, Class::Normal, Class::Low][*c as usize];
            let id = pkt(&mut pool, *len);
            if matches!(port.enqueue(class, id, &mut pool), EnqueueOutcome::Stored { .. }) {
                counts[*c as usize] += 1;
            }
        }
        port.set_paused(Class::Normal, pause_normal);
        let mut last_class = 0usize;
        let mut drained = [0i64; 3];
        while let Some((class, id)) = port.dequeue() {
            pool.release(id);
            let idx = class as usize;
            if pause_normal {
                prop_assert_ne!(idx, Class::Normal as usize, "paused class held");
            }
            // Since nothing is enqueued during the drain, class indices
            // must be non-decreasing.
            prop_assert!(idx >= last_class, "priority inversion: {idx} after {last_class}");
            last_class = idx;
            drained[idx] += 1;
        }
        for i in 0..3 {
            if pause_normal && i == Class::Normal as usize {
                prop_assert_eq!(drained[i], 0);
            } else {
                prop_assert_eq!(drained[i], counts[i], "class {} fully drained", i);
            }
        }
    }

    /// RecircBuffer: remove_up_to frees exactly the keys at or below the
    /// threshold, leaves the rest, and releases the freed packets.
    #[test]
    fn recirc_remove_up_to(keys in proptest::collection::btree_set(0u64..1000, 1..60), cut in 0u64..1000) {
        let mut pool = PacketPool::new();
        let mut b = RecircBuffer::new(10_000_000);
        for &k in &keys {
            let id = pkt(&mut pool, 100);
            b.insert(k, id, Time::ZERO, &pool).unwrap();
        }
        let freed = b.remove_up_to(cut, Time::from_us(1), &mut pool);
        prop_assert_eq!(freed, keys.iter().filter(|&&k| k <= cut).count());
        for &k in &keys {
            prop_assert_eq!(b.contains(k), k > cut, "key {} on the correct side", k);
        }
        prop_assert_eq!(b.len(), keys.iter().filter(|&&k| k > cut).count());
        prop_assert_eq!(pool.live(), b.len(), "freed packets released");
        if let Some(min) = b.min_key() {
            prop_assert!(min > cut);
        }
    }

    /// ECN marking: packets are CE-marked iff the queue depth at arrival
    /// (including the packet) meets the threshold, and only ECT packets.
    #[test]
    fn ecn_threshold_semantics(sizes in proptest::collection::vec(64u32..1500, 1..60), th in 100u64..30_000) {
        let mut pool = PacketPool::new();
        let mut q = ByteQueue::new(10_000_000).with_ecn_threshold(th);
        let mut depth = 0u64;
        let mut expected_marks = 0u64;
        for len in sizes {
            let id = pkt(&mut pool, len);
            pool.get_mut(id).ecn = lg_packet::Ecn::Ect0;
            let flen = pool.get(id).frame_len() as u64;
            depth += flen;
            let should_mark = depth >= th;
            match q.push(id, &mut pool) {
                EnqueueOutcome::Stored { marked } => {
                    prop_assert_eq!(marked, should_mark);
                    if marked { expected_marks += 1; }
                }
                EnqueueOutcome::Dropped => unreachable!("huge capacity"),
            }
        }
        prop_assert_eq!(q.marked(), expected_marks);
    }
}
