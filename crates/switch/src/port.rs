//! Egress ports: strict-priority scheduling over per-class queues with
//! PFC-style per-class pause.

use crate::queue::{ByteQueue, EnqueueOutcome};
use lg_packet::{PacketPool, PktId};
use serde::{Deserialize, Serialize};

/// Traffic classes, ordered by strictly decreasing priority.
///
/// Mirrors Figure 5 of the paper: loss notifications and retransmissions
/// ride the highest-priority queue; normal traffic next; the
/// self-replenishing dummy/ACK queues are *strictly lowest* priority so
/// they transmit only when no other traffic is pending.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(usize)]
pub enum Class {
    /// Highest: loss notifications, retransmitted copies, PFC.
    Control = 0,
    /// Normal tenant traffic (the class backpressure pauses).
    Normal = 1,
    /// Strictly lowest: self-replenishing dummy / explicit-ACK packets.
    Low = 2,
}

/// Number of traffic classes.
pub const NUM_CLASSES: usize = 3;

/// Default byte capacity of the normal queue (datacenter switches have
/// 16–42 MB shared; we give the experiment queue a generous slice).
pub const DEFAULT_QUEUE_CAP: u64 = 4 * 1024 * 1024;
/// Default byte capacity of control/low queues.
pub const DEFAULT_CTRL_CAP: u64 = 256 * 1024;

/// An egress port: one [`ByteQueue`] per class, strict-priority dequeue,
/// per-class pause state, and a busy flag driven by the testbed's
/// serialization events.
#[derive(Debug)]
pub struct EgressPort {
    queues: [ByteQueue; NUM_CLASSES],
    paused: [bool; NUM_CLASSES],
    /// True while a frame is being serialized onto the wire.
    pub busy: bool,
}

impl EgressPort {
    /// A port with default queue capacities and no ECN.
    pub fn new() -> EgressPort {
        EgressPort {
            queues: [
                ByteQueue::new(DEFAULT_CTRL_CAP),
                ByteQueue::new(DEFAULT_QUEUE_CAP),
                ByteQueue::new(DEFAULT_CTRL_CAP),
            ],
            paused: [false; NUM_CLASSES],
            busy: false,
        }
    }

    /// Enable ECN marking on the normal queue.
    pub fn with_ecn_threshold(mut self, threshold_bytes: u64) -> EgressPort {
        let cap = self.queues[Class::Normal as usize].capacity();
        self.queues[Class::Normal as usize] =
            ByteQueue::new(cap).with_ecn_threshold(threshold_bytes);
        self
    }

    /// Override the normal queue's byte capacity.
    pub fn with_normal_capacity(mut self, cap: u64) -> EgressPort {
        self.queues[Class::Normal as usize] = ByteQueue::new(cap);
        self
    }

    /// Charge every class queue against a shared [`MemBudget`]. Call
    /// after the capacity/ECN builders: those replace queues wholesale.
    pub fn with_budget(mut self, budget: crate::budget::MemBudget) -> EgressPort {
        self.set_budget(&budget);
        self
    }

    /// In-place form of [`EgressPort::with_budget`] (port must be idle).
    pub fn set_budget(&mut self, budget: &crate::budget::MemBudget) {
        for q in &mut self.queues {
            q.set_budget(budget.clone());
        }
    }

    /// Enqueue into the given class (drop-tail releases to the pool).
    pub fn enqueue(&mut self, class: Class, id: PktId, pool: &mut PacketPool) -> EnqueueOutcome {
        self.queues[class as usize].push(id, pool)
    }

    /// Dequeue the next packet by strict priority, skipping paused classes.
    pub fn dequeue(&mut self) -> Option<(Class, PktId)> {
        for (i, q) in self.queues.iter_mut().enumerate() {
            if self.paused[i] {
                continue;
            }
            if let Some(id) = q.pop() {
                let class = match i {
                    0 => Class::Control,
                    1 => Class::Normal,
                    _ => Class::Low,
                };
                return Some((class, id));
            }
        }
        None
    }

    /// True if any unpaused class has traffic waiting.
    pub fn has_eligible(&self) -> bool {
        self.queues
            .iter()
            .enumerate()
            .any(|(i, q)| !self.paused[i] && !q.is_empty())
    }

    /// True if every queue is empty (paused or not).
    pub fn is_drained(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }

    /// Pause or resume a class (PFC).
    pub fn set_paused(&mut self, class: Class, paused: bool) {
        self.paused[class as usize] = paused;
    }

    /// Whether a class is paused.
    pub fn is_paused(&self, class: Class) -> bool {
        self.paused[class as usize]
    }

    /// Access a class queue (for depth probes).
    pub fn queue(&self, class: Class) -> &ByteQueue {
        &self.queues[class as usize]
    }

    /// Total bytes across all class queues.
    pub fn total_bytes(&self) -> u64 {
        self.queues.iter().map(|q| q.bytes()).sum()
    }
}

impl Default for EgressPort {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lg_packet::{NodeId, Packet};
    use lg_sim::Time;

    fn pkt(pool: &mut PacketPool, uid: u64) -> PktId {
        let mut p = Packet::raw(NodeId(0), NodeId(1), 100, Time::ZERO);
        p.uid = uid;
        pool.insert(p)
    }

    #[test]
    fn strict_priority_order() {
        let mut pool = PacketPool::new();
        let mut port = EgressPort::new();
        let (a, b, c) = (pkt(&mut pool, 3), pkt(&mut pool, 2), pkt(&mut pool, 1));
        port.enqueue(Class::Low, a, &mut pool);
        port.enqueue(Class::Normal, b, &mut pool);
        port.enqueue(Class::Control, c, &mut pool);
        assert_eq!(pool.get(port.dequeue().unwrap().1).uid, 1);
        assert_eq!(pool.get(port.dequeue().unwrap().1).uid, 2);
        assert_eq!(pool.get(port.dequeue().unwrap().1).uid, 3);
        assert!(port.dequeue().is_none());
    }

    #[test]
    fn pause_skips_class_but_not_others() {
        let mut pool = PacketPool::new();
        let mut port = EgressPort::new();
        let (a, b) = (pkt(&mut pool, 1), pkt(&mut pool, 2));
        port.enqueue(Class::Normal, a, &mut pool);
        port.enqueue(Class::Low, b, &mut pool);
        port.set_paused(Class::Normal, true);
        // normal paused: the low-priority dummy goes out instead
        assert_eq!(pool.get(port.dequeue().unwrap().1).uid, 2);
        assert!(port.dequeue().is_none());
        assert!(!port.has_eligible());
        assert!(!port.is_drained());
        port.set_paused(Class::Normal, false);
        assert_eq!(pool.get(port.dequeue().unwrap().1).uid, 1);
        assert!(port.is_drained());
    }

    #[test]
    fn control_class_never_paused_by_normal_pause() {
        let mut pool = PacketPool::new();
        let mut port = EgressPort::new();
        port.set_paused(Class::Normal, true);
        let a = pkt(&mut pool, 9);
        port.enqueue(Class::Control, a, &mut pool);
        assert!(port.has_eligible());
        assert_eq!(port.dequeue().unwrap().0, Class::Control);
    }

    #[test]
    fn ecn_applies_to_normal_queue() {
        let mut pool = PacketPool::new();
        let mut port = EgressPort::new().with_ecn_threshold(150);
        let a = pkt(&mut pool, 1);
        pool.get_mut(a).ecn = lg_packet::Ecn::Ect0;
        let b = pool.insert(pool.get(a).clone());
        port.enqueue(Class::Normal, a, &mut pool);
        let out = port.enqueue(Class::Normal, b, &mut pool);
        assert_eq!(out, EnqueueOutcome::Stored { marked: true });
    }

    #[test]
    fn total_bytes_sums_classes() {
        let mut pool = PacketPool::new();
        let mut port = EgressPort::new();
        let (a, b) = (pkt(&mut pool, 1), pkt(&mut pool, 2));
        port.enqueue(Class::Control, a, &mut pool);
        port.enqueue(Class::Normal, b, &mut pool);
        assert_eq!(port.total_bytes(), 200);
    }
}
