//! Per-world memory budget for packet buffers.
//!
//! The type itself now lives in [`lg_obs::budget`] (the dependency-free
//! bottom of the crate graph) so the sharded packet fabric can share it
//! without depending on the full switch model; this module re-exports it
//! under the established `lg_switch::budget::MemBudget` path. See the
//! `lg_obs` module docs for the charge-before-store / graceful-drop
//! contract.

pub use lg_obs::budget::MemBudget;
