//! Reed–Solomon PHY FEC model (IEEE 802.3 Clause 91/134).
//!
//! Ethernet's PHY FEC is RS over 10-bit symbols: RS(528,514) "KR4"
//! (corrects t = 7 symbols per codeword) and RS(544,514) "KP4"
//! (t = 15). A codeword is decoded correctly iff at most `t` of its
//! symbols are in error; otherwise the whole codeword — and every frame
//! overlapping it — is lost. The redundancy parameters are fixed by the
//! standard and cannot adapt to the observed loss rate, which is exactly
//! the limitation the paper points out (§2).

use serde::{Deserialize, Serialize};

/// A Reed–Solomon FEC configuration over `m`-bit symbols.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RsFec {
    /// Total symbols per codeword (n).
    pub n: u32,
    /// Data symbols per codeword (k).
    pub k: u32,
    /// Bits per symbol.
    pub symbol_bits: u32,
}

impl RsFec {
    /// RS(528,514), 10-bit symbols, corrects 7 symbols: the "KR4" FEC used
    /// by 25G/100G Ethernet.
    pub fn kr4() -> RsFec {
        RsFec {
            n: 528,
            k: 514,
            symbol_bits: 10,
        }
    }

    /// RS(544,514), 10-bit symbols, corrects 15 symbols: the "KP4" FEC
    /// mandatory for 50G/200G/400G PAM4 Ethernet.
    pub fn kp4() -> RsFec {
        RsFec {
            n: 544,
            k: 514,
            symbol_bits: 10,
        }
    }

    /// Symbols correctable per codeword: `t = (n - k) / 2`.
    pub fn t(&self) -> u32 {
        (self.n - self.k) / 2
    }

    /// Probability a symbol is in error given bit error rate `ber`.
    pub fn symbol_error_rate(&self, ber: f64) -> f64 {
        crate::phy::at_least_one(ber, self.symbol_bits as f64)
    }

    /// Probability a codeword is uncorrectable: `P[X > t]`, X ~
    /// Binomial(n, p_sym). Computed in log space for numerical stability at
    /// the tiny probabilities FEC produces.
    pub fn codeword_error_rate(&self, ber: f64) -> f64 {
        let p = self.symbol_error_rate(ber);
        if p <= 0.0 {
            return 0.0;
        }
        if p >= 1.0 {
            return 1.0;
        }
        let n = self.n as f64;
        let t = self.t();
        // P[X > t] = 1 - sum_{i=0..t} C(n,i) p^i (1-p)^(n-i)
        // For small p the tail is dominated by the first failing term, so
        // when the cumulative head is ~1 we compute the tail directly.
        let ln_p = p.ln();
        let ln_q = (-p).ln_1p();
        // Head mass P[X <= t], each term computed in log space.
        let mut head = 0.0f64;
        let mut ln_c = 0.0f64; // ln C(n, 0)
        for i in 0..=t {
            if i > 0 {
                ln_c += ((n - i as f64 + 1.0) / i as f64).ln();
            }
            head += (ln_c + i as f64 * ln_p + (n - i as f64) * ln_q).exp();
        }
        // When the head holds less than half the mass, `1 - head` is
        // numerically fine (no catastrophic cancellation).
        if head < 0.5 {
            return (1.0 - head).clamp(0.0, 1.0);
        }
        // Otherwise the tail is small: sum it directly upward from t+1
        // (terms decay past the mode, which lies inside the head here).
        let mut tail = 0.0f64;
        let mut ln_ci = ln_c + ((n - t as f64) / (t as f64 + 1.0)).ln(); // ln C(n, t+1)
        let mut i = t + 1;
        while (i as f64) <= n {
            let term = (ln_ci + i as f64 * ln_p + (n - i as f64) * ln_q).exp();
            tail += term;
            if term > 0.0 && term < tail * 1e-17 {
                break;
            }
            i += 1;
            if (i as f64) <= n {
                ln_ci += ((n - i as f64 + 1.0) / i as f64).ln();
            }
        }
        tail.min(1.0)
    }

    /// Frame loss rate for `frame_bytes` frames after FEC.
    ///
    /// A frame spans `ceil(frame_bits / (k · symbol_bits))` codewords (plus
    /// one for straddling alignment) and is lost if any of them is
    /// uncorrectable.
    pub fn frame_loss_rate(&self, ber: f64, frame_bytes: u32) -> f64 {
        let frame_bits = frame_bytes as f64 * 8.0;
        let data_bits_per_cw = (self.k * self.symbol_bits) as f64;
        let codewords = (frame_bits / data_bits_per_cw).ceil() + 1.0;
        crate::phy::at_least_one(self.codeword_error_rate(ber), codewords)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_values_match_standard() {
        assert_eq!(RsFec::kr4().t(), 7);
        assert_eq!(RsFec::kp4().t(), 15);
    }

    #[test]
    fn zero_ber_is_lossless() {
        assert_eq!(RsFec::kr4().codeword_error_rate(0.0), 0.0);
        assert_eq!(RsFec::kp4().frame_loss_rate(0.0, 1518), 0.0);
    }

    #[test]
    fn kp4_outperforms_kr4_at_same_ber() {
        for ber in [1e-5, 1e-4, 5e-4] {
            let kr4 = RsFec::kr4().codeword_error_rate(ber);
            let kp4 = RsFec::kp4().codeword_error_rate(ber);
            assert!(kp4 < kr4, "ber {ber:e}: kp4 {kp4:e} !< kr4 {kr4:e}");
        }
    }

    #[test]
    fn codeword_error_monotonic_in_ber() {
        let fec = RsFec::kr4();
        let mut last = 0.0;
        for exp in (-8..=-2).map(|e| 10f64.powi(e)) {
            let p = fec.codeword_error_rate(exp);
            assert!(p >= last, "non-monotonic at ber {exp:e}");
            last = p;
        }
    }

    #[test]
    fn fec_cliff_is_steep() {
        // RS FEC produces the classic waterfall: an order of magnitude in
        // BER moves the codeword error rate by many orders of magnitude.
        let fec = RsFec::kr4();
        let hi = fec.codeword_error_rate(1e-4);
        let lo = fec.codeword_error_rate(1e-5);
        assert!(hi / lo > 1e4, "cliff not steep: {hi:e} vs {lo:e}");
    }

    #[test]
    fn known_magnitude_check() {
        // At BER 1e-4 with 10-bit symbols, p_sym ≈ 1e-3. For KR4 (n=528,
        // t=7), P[X>7] with mean np≈0.528 should be astronomically small
        // but nonzero; sanity-bound the magnitude.
        let p = RsFec::kr4().codeword_error_rate(1e-4);
        assert!(p > 1e-14 && p < 1e-6, "p = {p:e}");
    }

    #[test]
    fn frame_loss_increases_with_frame_size() {
        let fec = RsFec::kr4();
        let ber = 3e-4;
        assert!(fec.frame_loss_rate(ber, 1518) > fec.frame_loss_rate(ber, 64));
    }

    #[test]
    fn extreme_ber_saturates() {
        assert_eq!(RsFec::kr4().codeword_error_rate(0.5), 1.0);
        assert!(RsFec::kr4().frame_loss_rate(0.5, 1518) > 0.999999);
    }
}
