//! Scheduler throughput: the timer-wheel `EventQueue` against the
//! `BinaryHeap` reference implementation it replaced.
//!
//! The workload mirrors what the simulator actually does: a bounded
//! population of pending events where every pop schedules follow-ups a
//! short horizon ahead (serialization delays, timer re-arms) and a
//! fraction of events are cancelled before firing (retransmission timers
//! disarmed by an ack). Horizons are drawn from a mix matching the
//! simulator's: mostly nanoseconds-to-microseconds, occasionally
//! milliseconds (RTO-scale).
//!
//! The acceptance bar for the wheel is >= 2x the reference's
//! schedule+pop throughput at 1M events; run this bench to compare.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lg_sim::event::reference;
use lg_sim::{Duration, EventQueue, Rng};

/// Draw a scheduling horizon from the simulator's characteristic mix:
/// 60% sub-microsecond (per-packet serialization), 30% tens of
/// microseconds (RTT-scale), 10% milliseconds (RTO-scale timers).
fn horizon(rng: &mut Rng) -> Duration {
    match rng.below(10) {
        0..=5 => Duration::from_ps(1 + rng.below(1_000_000)),
        6..=8 => Duration::from_ps(1 + rng.below(100_000_000)),
        _ => Duration::from_ps(1 + rng.below(10_000_000_000)),
    }
}

/// Run `total` schedule+pop pairs: keep `population` events pending,
/// popping one and scheduling another each step; every 8th event is
/// cancelled (and replaced) instead of popped.
fn churn_wheel(total: u64, population: u64, seed: u64) -> u64 {
    let mut q: EventQueue<u64> = EventQueue::new();
    let mut rng = Rng::new(seed);
    let mut handles = Vec::with_capacity(population as usize);
    for i in 0..population {
        let at = q.now() + horizon(&mut rng);
        handles.push(q.schedule_at(at, i));
    }
    let mut acc = 0u64;
    for i in 0..total {
        if i % 8 == 7 {
            let h = handles[(rng.below(population) as usize) % handles.len()];
            q.cancel(h);
        } else if let Some((t, v)) = q.pop() {
            acc = acc.wrapping_add(t.as_ps()).wrapping_add(v);
        }
        let at = q.now() + horizon(&mut rng);
        handles[(i % population) as usize] = q.schedule_at(at, i);
    }
    acc
}

/// Same churn against the heap+tombstone reference implementation.
fn churn_reference(total: u64, population: u64, seed: u64) -> u64 {
    let mut q: reference::EventQueue<u64> = reference::EventQueue::new();
    let mut rng = Rng::new(seed);
    let mut handles = Vec::with_capacity(population as usize);
    for i in 0..population {
        let at = q.now() + horizon(&mut rng);
        handles.push(q.schedule_at(at, i));
    }
    let mut acc = 0u64;
    for i in 0..total {
        if i % 8 == 7 {
            let h = handles[(rng.below(population) as usize) % handles.len()];
            q.cancel(h);
        } else if let Some((t, v)) = q.pop() {
            acc = acc.wrapping_add(t.as_ps()).wrapping_add(v);
        }
        let at = q.now() + horizon(&mut rng);
        handles[(i % population) as usize] = q.schedule_at(at, i);
    }
    acc
}

fn bench_scheduler(c: &mut Criterion) {
    const TOTAL: u64 = 1_000_000;
    const POPULATION: u64 = 4_096;
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(TOTAL));
    g.bench_function("wheel/churn_1m", |b| {
        b.iter(|| churn_wheel(black_box(TOTAL), POPULATION, 42))
    });
    g.bench_function("reference_heap/churn_1m", |b| {
        b.iter(|| churn_reference(black_box(TOTAL), POPULATION, 42))
    });
    g.finish();
}

fn bench_drain(c: &mut Criterion) {
    // Pure schedule-then-drain (no steady-state churn): stresses bulk
    // insert and ordered drain rather than the wrap-around cursor.
    const N: u64 = 100_000;
    let mut g = c.benchmark_group("scheduler_drain");
    g.throughput(Throughput::Elements(N));
    g.bench_function("wheel/fill_drain_100k", |b| {
        b.iter(|| {
            let mut q: EventQueue<u64> = EventQueue::new();
            let mut rng = Rng::new(7);
            for i in 0..N {
                let at = q.now() + horizon(&mut rng);
                q.schedule_at(at, i);
            }
            let mut acc = 0u64;
            while let Some((t, v)) = q.pop() {
                acc = acc.wrapping_add(t.as_ps()).wrapping_add(v);
            }
            acc
        })
    });
    g.bench_function("reference_heap/fill_drain_100k", |b| {
        b.iter(|| {
            let mut q: reference::EventQueue<u64> = reference::EventQueue::new();
            let mut rng = Rng::new(7);
            for i in 0..N {
                let at = q.now() + horizon(&mut rng);
                q.schedule_at(at, i);
            }
            let mut acc = 0u64;
            while let Some((t, v)) = q.pop() {
                acc = acc.wrapping_add(t.as_ps()).wrapping_add(v);
            }
            acc
        })
    });
    g.finish();
}

criterion_group!(benches, bench_scheduler, bench_drain);
criterion_main!(benches);
