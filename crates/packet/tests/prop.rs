//! Property-based tests for wire formats and sequence-number arithmetic.

use lg_packet::eth::{EtherType, EthernetRepr, MacAddr};
use lg_packet::ipv4::{Ecn, IpProtocol, Ipv4Repr};
use lg_packet::lg::{LgAck, LgData, LgPacketType, LossNotification, MAX_CONSECUTIVE_LOSSES};
use lg_packet::rdma::{psn_before, Bth, RdmaOpcode, PSN_SPACE};
use lg_packet::seqno::{SeqNo, MAX_VALID_DISTANCE};
use lg_packet::tcp::{SackBlock, SackList, TcpFlags, TcpRepr};
use lg_packet::udp::UdpRepr;
use proptest::prelude::*;

fn arb_seqno() -> impl Strategy<Value = SeqNo> {
    (any::<u16>(), any::<bool>()).prop_map(|(raw, era)| SeqNo::new(raw, era))
}

proptest! {
    #[test]
    fn seqno_advance_is_ordered(start in arb_seqno(), k in 1u32..(MAX_VALID_DISTANCE as u32)) {
        let later = start.advance(k);
        prop_assert!(start.is_before(later), "{start} < {later} for k={k}");
        prop_assert!(later.is_after(start));
        prop_assert_eq!(later.forward_dist(start) as u32, k);
    }

    #[test]
    fn seqno_comparison_antisymmetric(a in arb_seqno(), k in 1u32..(MAX_VALID_DISTANCE as u32)) {
        let b = a.advance(k);
        prop_assert!(!(a.is_after(b) && a.is_before(b)));
        prop_assert!(b.is_after(a) && !b.is_before(a));
    }

    #[test]
    fn seqno_wire_round_trip(s in arb_seqno()) {
        prop_assert_eq!(SeqNo::from_wire(s.to_wire()), s);
    }

    #[test]
    fn seqno_succ_equals_advance_one(s in arb_seqno()) {
        prop_assert_eq!(s.succ(), s.advance(1));
    }

    #[test]
    fn lg_data_round_trip(s in arb_seqno(), kind in 0u8..3) {
        let kind = match kind {
            0 => LgPacketType::Original,
            1 => LgPacketType::Retransmit,
            _ => LgPacketType::Dummy,
        };
        let h = LgData { seq: s, kind };
        let mut buf = [0u8; 3];
        h.emit(&mut buf);
        prop_assert_eq!(LgData::parse(&buf).unwrap(), h);
    }

    #[test]
    fn lg_ack_round_trip(s in arb_seqno(), explicit in any::<bool>()) {
        let h = LgAck { latest_rx: s, explicit };
        let mut buf = [0u8; 3];
        h.emit(&mut buf);
        prop_assert_eq!(LgAck::parse(&buf).unwrap(), h);
    }

    #[test]
    fn loss_notification_round_trip(
        first in arb_seqno(),
        count in 1u16..=MAX_CONSECUTIVE_LOSSES,
        latest in arb_seqno(),
    ) {
        let n = LossNotification { first_lost: first, count, latest_rx: latest };
        let mut buf = [0u8; LossNotification::LEN];
        n.emit(&mut buf);
        prop_assert_eq!(LossNotification::parse(&buf).unwrap(), n);
    }

    #[test]
    fn ethernet_round_trip(d in any::<[u8;6]>(), s in any::<[u8;6]>(), et in 0usize..3) {
        let ethertype = [EtherType::Ipv4, EtherType::MacControl, EtherType::LinkGuardian][et];
        let h = EthernetRepr { dst: MacAddr(d), src: MacAddr(s), ethertype };
        let mut buf = [0u8; 14];
        h.emit(&mut buf);
        prop_assert_eq!(EthernetRepr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn ipv4_round_trip(
        src in any::<[u8;4]>(),
        dst in any::<[u8;4]>(),
        len in 0u16..1480,
        ecn in 0u8..4,
        ttl in 1u8..=255,
        proto in any::<bool>(),
    ) {
        let h = Ipv4Repr {
            src, dst,
            protocol: if proto { IpProtocol::Tcp } else { IpProtocol::Udp },
            payload_len: len,
            ecn: Ecn::from_bits(ecn),
            ttl,
        };
        let mut buf = [0u8; 20];
        h.emit(&mut buf);
        prop_assert_eq!(Ipv4Repr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn ipv4_bit_flip_detected(flip_byte in 0usize..20, flip_bit in 0u8..8) {
        let h = Ipv4Repr {
            src: [10,0,0,1], dst: [10,0,0,2],
            protocol: IpProtocol::Tcp, payload_len: 64,
            ecn: Ecn::Ect0, ttl: 64,
        };
        let mut buf = [0u8; 20];
        h.emit(&mut buf);
        buf[flip_byte] ^= 1 << flip_bit;
        // a single bit flip must never parse back to the identical header
        if let Ok(parsed) = Ipv4Repr::parse(&buf) { prop_assert_ne!(parsed, h) }
    }

    #[test]
    fn tcp_round_trip(
        sp in any::<u16>(), dp in any::<u16>(),
        seq in any::<u32>(), ack in any::<u32>(),
        win in any::<u16>(),
        nblocks in 0usize..=3,
        flag_bits in 0u8..64,
    ) {
        let sack: SackList = (0..nblocks)
            .map(|i| SackBlock { start: seq.wrapping_add(1000 * i as u32), end: seq.wrapping_add(1000 * i as u32 + 99) })
            .collect();
        let h = TcpRepr {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags {
                syn: flag_bits & 1 != 0,
                ack: flag_bits & 2 != 0,
                fin: flag_bits & 4 != 0,
                psh: flag_bits & 8 != 0,
                ece: flag_bits & 16 != 0,
                cwr: flag_bits & 32 != 0,
            },
            window: win,
            sack,
        };
        let mut buf = vec![0u8; h.header_len()];
        h.emit(&mut buf);
        prop_assert_eq!(TcpRepr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn udp_round_trip(sp in any::<u16>(), dp in any::<u16>(), len in 0u16..1472) {
        let h = UdpRepr { src_port: sp, dst_port: dp, payload_len: len };
        let mut buf = [0u8; 8];
        h.emit(&mut buf);
        prop_assert_eq!(UdpRepr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn bth_round_trip(qp in 0u32..(1<<24), psn in 0u32..(1<<24), ack_req in any::<bool>(), op in 0usize..5) {
        let opcode = [
            RdmaOpcode::WriteFirst, RdmaOpcode::WriteMiddle,
            RdmaOpcode::WriteLast, RdmaOpcode::WriteOnly, RdmaOpcode::Acknowledge,
        ][op];
        let h = Bth { opcode, dest_qp: qp, psn, ack_req };
        let mut buf = [0u8; Bth::LEN];
        h.emit(&mut buf);
        prop_assert_eq!(Bth::parse(&buf).unwrap(), h);
    }

    #[test]
    fn psn_ordering_within_window(base in 0u32..PSN_SPACE, step in 1u32..(PSN_SPACE/2)) {
        let next = (base + step) % PSN_SPACE;
        prop_assert!(psn_before(base, next));
        prop_assert!(!psn_before(next, base));
    }

    #[test]
    fn truncated_parses_never_panic(data in proptest::collection::vec(any::<u8>(), 0..64)) {
        // Whatever the bytes, parsers must return Ok/Err, never panic.
        let _ = EthernetRepr::parse(&data);
        let _ = Ipv4Repr::parse(&data);
        let _ = TcpRepr::parse(&data);
        let _ = UdpRepr::parse(&data);
        let _ = Bth::parse(&data);
        let _ = LgData::parse(&data);
        let _ = LgAck::parse(&data);
        let _ = LossNotification::parse(&data);
    }
}
