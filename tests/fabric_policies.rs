//! Large-scale policy invariants across the fabric simulation.

use lg_fabric::{run, FabricSimConfig, Policy};

fn cfg(policy: Policy, constraint: f64) -> FabricSimConfig {
    FabricSimConfig {
        pods: 30,
        horizon_hours: 24.0 * 60.0, // two months
        constraint,
        policy,
        sample_interval_hours: 4.0,
        target_loss_rate: 1e-8,
        seed: 777,
    }
}

#[test]
fn capacity_constraint_never_violated() {
    for constraint in [0.5, 0.75] {
        for policy in [Policy::CorrOptOnly, Policy::LgPlusCorrOpt] {
            let r = run(&cfg(policy, constraint));
            for s in &r.samples {
                assert!(
                    s.least_paths >= constraint - 1e-9,
                    "{policy:?}@{constraint}: paths {} at t={}",
                    s.least_paths,
                    s.t_hours
                );
            }
        }
    }
}

#[test]
fn joint_policy_reduces_penalty_by_orders_of_magnitude() {
    let co = run(&cfg(Policy::CorrOptOnly, 0.75));
    let lg = run(&cfg(Policy::LgPlusCorrOpt, 0.75));
    let mean = |r: &lg_fabric::FabricSimResult| {
        r.samples.iter().map(|s| s.total_penalty).sum::<f64>() / r.samples.len() as f64
    };
    let (pc, pl) = (mean(&co), mean(&lg));
    assert!(pc > 0.0, "constraint must bind somewhere in two months");
    assert!(
        pc / pl.max(1e-300) > 1e4,
        "gain {:.1e} must be ≥4 orders (paper's headline)",
        pc / pl.max(1e-300)
    );
}

#[test]
fn stricter_constraint_increases_corropt_penalty() {
    let loose = run(&cfg(Policy::CorrOptOnly, 0.5));
    let strict = run(&cfg(Policy::CorrOptOnly, 0.75));
    let mean = |r: &lg_fabric::FabricSimResult| {
        r.samples.iter().map(|s| s.total_penalty).sum::<f64>() / r.samples.len() as f64
    };
    assert!(
        mean(&strict) >= mean(&loose),
        "75% constraint defers more corrupting links than 50%"
    );
}

#[test]
fn lg_capacity_cost_is_small() {
    let co = run(&cfg(Policy::CorrOptOnly, 0.75));
    let lg = run(&cfg(Policy::LgPlusCorrOpt, 0.75));
    let worst_drop = co
        .samples
        .iter()
        .zip(lg.samples.iter())
        .map(|(a, b)| a.least_capacity - b.least_capacity)
        .fold(0.0f64, f64::max);
    assert!(
        worst_drop < 0.01,
        "worst per-pod capacity cost {worst_drop:.4} must stay below 1%"
    );
}

#[test]
fn concurrent_lg_links_per_switch_stay_small() {
    // §5: the paper observed at most 2 (50%) / 4 (75%) concurrently
    // LinkGuardian-enabled links per switch pipe.
    let lg = run(&cfg(Policy::LgPlusCorrOpt, 0.75));
    assert!(
        lg.counts.peak_lg_per_fabric_switch <= 8,
        "peak {} concurrently-protected links per fabric switch",
        lg.counts.peak_lg_per_fabric_switch
    );
}

#[test]
fn repairs_conserve_links() {
    let r = run(&cfg(Policy::CorrOptOnly, 0.5));
    assert_eq!(
        r.counts.disabled_immediately + r.counts.optimizer_disabled,
        r.counts.repairs + (r.samples.last().map(|s| s.disabled).unwrap_or(0) as u64),
        "every disabled link is either repaired or still in repair at the end"
    );
}
