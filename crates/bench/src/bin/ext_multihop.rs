//! Extension study (paper §5 "Multiple corrupting links on a path"):
//! FCTs across a chain with several corrupting hops, unprotected vs
//! per-hop LinkGuardian. The paper could not run this (not enough optical
//! attenuators); the simulation can.
//!
//! Usage: `cargo run --release -p lg-bench --bin ext_multihop
//! [--trials 4000]`

use lg_bench::{arg, banner};
use lg_link::{LinkSpeed, LossModel};
use lg_testbed::{ChainApp, ChainConfig, ChainWorld};
use lg_transport::CcVariant;

fn run(n_corrupting: usize, protected: bool, trials: u32) -> (f64, f64, u64) {
    let losses: Vec<LossModel> = (0..n_corrupting)
        .map(|_| LossModel::Iid { rate: 1e-3 })
        .collect();
    let n = losses.len();
    let mut cfg = ChainConfig::protected_chain(
        LinkSpeed::G100,
        losses,
        ChainApp::TcpTrials {
            variant: CcVariant::Dctcp,
            msg_len: 24_387,
            trials,
        },
    );
    cfg.protected = vec![protected; n];
    cfg.seed = 60;
    let mut w = ChainWorld::new(cfg);
    w.run_to_completion();
    (
        w.fct.quantile_us(0.99),
        w.fct.quantile_us(0.999),
        w.e2e_retx,
    )
}

fn main() {
    let _obs = lg_bench::obs::session("ext_multihop");
    banner(
        "Extension: multiple corrupting links on a path",
        "24,387B DCTCP trials across 1-3 corrupting hops (1e-3 each, 100G)",
    );
    let trials: u32 = arg("--trials", 4_000u32);
    println!(
        "{:<16} {:<14} {:>10} {:>12} {:>10}",
        "corrupting hops", "protection", "p99 (us)", "p99.9 (us)", "e2e retx"
    );
    for hops in 1..=3 {
        for (label, prot) in [("none", false), ("LG per hop", true)] {
            let (p99, p999, retx) = run(hops, prot, trials);
            println!(
                "{:<16} {:<14} {:>10.1} {:>12.1} {:>10}",
                hops, label, p99, p999, retx
            );
        }
    }
    println!();
    println!("each additional corrupting hop multiplies the per-flow loss exposure;");
    println!("per-hop LinkGuardian keeps every configuration at the no-loss level —");
    println!("it \"naturally handles such a scenario since it operates on each link");
    println!("independently\" (§5).");
}
