//! Figure 12: top-5% FCTs for 2 MB DCTCP flows on a 100 G link
//! (the Alibaba storage maximum).
//!
//! Usage: `cargo run --release -p lg-bench --bin fig12_fct_2mb
//! [--trials 2000] [--threads N]`
//!
//! The four curves run in parallel; output is identical at any
//! `--threads` value.

use lg_bench::{arg, banner, sweep};
use lg_link::{LinkSpeed, LossModel};
use lg_testbed::{fct_experiment, FctTransport, Protection};
use lg_transport::CcVariant;

fn main() {
    let _obs = lg_bench::obs::session("fig12_fct_2mb");
    banner(
        "Figure 12",
        "top 5% FCTs for 2MB DCTCP flows on a 100G link (1e-3 loss)",
    );
    let trials: u32 = arg("--trials", 2_000u32);
    let seed: u64 = arg("--seed", 12);
    let speed = LinkSpeed::G100;
    let loss = LossModel::Iid { rate: 1e-3 };
    println!(
        "{:<18} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "curve", "p95(us)", "p99(us)", "p99.9(us)", "affected(%)", "e2e_retx"
    );
    let curves = [
        ("no loss", LossModel::None, Protection::Off),
        ("+LG (1e-3)", loss.clone(), Protection::Lg),
        ("+LG_NB (1e-3)", loss.clone(), Protection::LgNb),
        ("loss (1e-3)", loss.clone(), Protection::Off),
    ];
    let results = sweep::run(&curves, |(_, lm, prot)| {
        fct_experiment(
            speed,
            lm.clone(),
            *prot,
            FctTransport::Tcp(CcVariant::Dctcp),
            2_097_152,
            trials,
            seed,
        )
    });
    for ((label, _, _), r) in curves.iter().zip(&results) {
        let p95 = r.tail_cdf.first().map(|p| p.0).unwrap_or(0.0);
        let affected = r
            .traces
            .iter()
            .filter(|t| t.e2e_retx > 0 || t.max_sacked_bytes > 0)
            .count() as f64
            / r.traces.len().max(1) as f64
            * 100.0;
        println!(
            "{:<18} {:>10.1} {:>10.1} {:>10.1} {:>12.1} {:>10}",
            label, p95, r.report.p99_us, r.report.p999_us, affected, r.e2e_retx
        );
    }
    println!();
    println!("paper: a 2MB flow spans ~1,400 packets, so ~80% of flows see >=1 corruption;");
    println!("       LG improves p99.9 ~4x, LG_NB ~2x (longer tail from mid-flow cwnd cuts).");
}
