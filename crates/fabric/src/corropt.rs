//! CorrOpt (Zhuo et al., SIGCOMM 2017) re-implemented from its published
//! description: decide which corrupting links can be disabled for repair
//! without violating the network capacity constraint.
//!
//! * **Fast checker**: when a link starts corrupting, test whether
//!   disabling it keeps every ToR in its pod at or above the constraint
//!   (the minimum fraction of valley-free paths to the spine).
//! * **Optimizer**: when repairs complete and capacity returns, greedily
//!   disable the still-corrupting links in descending loss-rate order
//!   (highest penalty first), re-checking the constraint each time.

use crate::topology::{Fabric, LinkId, LinkState};
use serde::{Deserialize, Serialize};

/// The capacity constraint: minimum fraction of ToR→spine paths every ToR
/// must keep (the paper evaluates 50% and 75%).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityConstraint(pub f64);

/// CorrOpt decision engine.
#[derive(Debug)]
pub struct CorrOpt {
    /// Constraint in force.
    pub constraint: CapacityConstraint,
}

impl CorrOpt {
    /// Engine with the given constraint.
    pub fn new(constraint: CapacityConstraint) -> CorrOpt {
        CorrOpt { constraint }
    }

    /// Fast checker: can `link` be disabled right now without violating
    /// the constraint? (Only its own pod is affected: fabric links are
    /// pod-local in this topology.)
    pub fn can_disable(&self, fabric: &mut Fabric, link: LinkId) -> bool {
        let pod = fabric.link(link).pod;
        let prev = fabric.link(link).state;
        if prev == LinkState::Disabled {
            return false;
        }
        fabric.set_state(link, LinkState::Disabled);
        let ok = fabric.least_paths_fraction_in_pod(pod) >= self.constraint.0 - 1e-12;
        fabric.set_state(link, prev);
        ok
    }

    /// Disable `link` for repair if the fast checker allows it. Returns
    /// true if disabled.
    pub fn try_disable(&self, fabric: &mut Fabric, link: LinkId) -> bool {
        if self.can_disable(fabric, link) {
            fabric.set_state(link, LinkState::Disabled);
            true
        } else {
            false
        }
    }

    /// Optimizer: given the still-active corrupting links, disable as many
    /// as possible in descending loss-rate order. Returns the links newly
    /// disabled.
    pub fn optimize(&self, fabric: &mut Fabric, corrupting: &[(LinkId, f64)]) -> Vec<LinkId> {
        let mut out = Vec::new();
        self.optimize_into(fabric, corrupting, &mut Vec::new(), &mut out);
        out
    }

    /// Allocation-free form of [`CorrOpt::optimize`] for callers on an
    /// event loop: sorts `corrupting` into `scratch` and appends newly
    /// disabled links to `out`, so year-long sweeps (one optimizer pass
    /// per repair event) reuse the same two buffers throughout.
    pub fn optimize_into(
        &self,
        fabric: &mut Fabric,
        corrupting: &[(LinkId, f64)],
        scratch: &mut Vec<(LinkId, f64)>,
        out: &mut Vec<LinkId>,
    ) {
        scratch.clear();
        scratch.extend_from_slice(corrupting);
        scratch.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("no NaN"));
        for &(link, _) in scratch.iter() {
            if matches!(fabric.link(link).state, LinkState::Corrupting { .. })
                && self.try_disable(fabric, link)
            {
                out.push(link);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::LinkKind;

    fn tor_fabric_link(f: &Fabric, pod: u32, tor: u8, fab: u8) -> LinkId {
        f.pod_link_ids(pod)
            .find(|&id| {
                matches!(f.link(id).kind, LinkKind::TorFabric { tor: t, fabric: fb } if t == tor && fb == fab)
            })
            .unwrap()
    }

    #[test]
    fn single_link_always_disableable_at_75() {
        // Fig 4's "link A" scenario: one ToR-fabric link costs 48/192 = 25%
        // of one ToR's paths, leaving exactly 75%.
        let mut f = Fabric::new(1);
        let co = CorrOpt::new(CapacityConstraint(0.75));
        let a = tor_fabric_link(&f, 0, 0, 0);
        assert!(co.can_disable(&mut f, a));
        assert!(co.try_disable(&mut f, a));
        assert_eq!(f.link(a).state, LinkState::Disabled);
    }

    #[test]
    fn second_link_on_same_tor_violates_75() {
        // Fig 4's "link B": with link A down, ToR 0 is at exactly 75%;
        // disabling a second fabric link of the same ToR would leave 50%.
        let mut f = Fabric::new(1);
        let co = CorrOpt::new(CapacityConstraint(0.75));
        let a = tor_fabric_link(&f, 0, 0, 0);
        let b = tor_fabric_link(&f, 0, 0, 1);
        co.try_disable(&mut f, a);
        assert!(!co.can_disable(&mut f, b), "link B must stay up");
        // but a 50% constraint would allow it
        let co50 = CorrOpt::new(CapacityConstraint(0.50));
        assert!(co50.can_disable(&mut f, b));
    }

    #[test]
    fn checker_restores_state_on_failure() {
        let mut f = Fabric::new(1);
        let co = CorrOpt::new(CapacityConstraint(0.75));
        let a = tor_fabric_link(&f, 0, 0, 0);
        f.set_state(
            a,
            LinkState::Corrupting {
                loss_rate: 1e-3,
                lg_active: false,
            },
        );
        let b = tor_fabric_link(&f, 0, 0, 1);
        f.set_state(b, LinkState::Disabled);
        assert!(!co.can_disable(&mut f, a));
        assert!(matches!(f.link(a).state, LinkState::Corrupting { .. }));
    }

    #[test]
    fn disabled_link_cannot_be_disabled_again() {
        let mut f = Fabric::new(1);
        let co = CorrOpt::new(CapacityConstraint(0.5));
        let a = tor_fabric_link(&f, 0, 0, 0);
        co.try_disable(&mut f, a);
        assert!(!co.can_disable(&mut f, a));
    }

    #[test]
    fn optimizer_prefers_worst_links() {
        let mut f = Fabric::new(1);
        let co = CorrOpt::new(CapacityConstraint(0.75));
        // two corrupting links on the same ToR: only one can be disabled,
        // and it must be the higher-loss one
        let a = tor_fabric_link(&f, 0, 0, 0);
        let b = tor_fabric_link(&f, 0, 0, 1);
        for (id, rate) in [(a, 1e-5), (b, 1e-3)] {
            f.set_state(
                id,
                LinkState::Corrupting {
                    loss_rate: rate,
                    lg_active: false,
                },
            );
        }
        let disabled = co.optimize(&mut f, &[(a, 1e-5), (b, 1e-3)]);
        assert_eq!(disabled, vec![b], "worst link first");
        assert!(matches!(f.link(a).state, LinkState::Corrupting { .. }));
    }

    #[test]
    fn optimizer_disables_independent_links_everywhere() {
        let mut f = Fabric::new(2);
        let co = CorrOpt::new(CapacityConstraint(0.75));
        let a = tor_fabric_link(&f, 0, 3, 0);
        let b = tor_fabric_link(&f, 1, 7, 2);
        for id in [a, b] {
            f.set_state(
                id,
                LinkState::Corrupting {
                    loss_rate: 1e-4,
                    lg_active: false,
                },
            );
        }
        let disabled = co.optimize(&mut f, &[(a, 1e-4), (b, 1e-4)]);
        assert_eq!(disabled.len(), 2);
    }
}
