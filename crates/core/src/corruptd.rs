//! `corruptd` — the control-plane link-corruption monitor (Appendix C).
//!
//! A daemon on each switch's local control plane polls the driver every
//! second for per-port `framesRxOk` / `framesRxAll`, maintains a moving
//! window of frames to compute the link loss rate, and — when the loss
//! rate reaches the activation threshold (1e-8, the boundary of a
//! "healthy" link) — notifies the upstream transmitting switch to activate
//! LinkGuardian with the number of retransmitted copies dictated by Eq. 2.
//!
//! Daemons communicate through a publish/subscribe bus (the paper uses
//! Redis); [`CorruptionBus`] is the in-process equivalent.

use crate::eq::retx_copies;
use lg_sim::{Duration, Time};
use lg_switch::PortCounters;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// The paper's polling interval.
pub const POLL_INTERVAL: Duration = Duration(1_000_000_000_000); // 1 s
/// Moving window of frames over which the loss rate is computed.
pub const WINDOW_FRAMES: u64 = 100_000_000;
/// Activation threshold: a loss rate of 1e-8 (BER ≈ 1e-12 for MTU frames)
/// is the boundary of a healthy link.
pub const ACTIVATION_THRESHOLD: f64 = 1e-8;

/// A corruption notification published on the bus.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorruptionNotice {
    /// Switch that observed the corruption (the receiver side).
    pub observer_switch: u32,
    /// Port on which corruption was observed.
    pub port: usize,
    /// Measured loss rate over the window.
    pub loss_rate: f64,
    /// Retransmission copies the sender should use (Eq. 2).
    pub retx_copies: u32,
    /// When the detection happened.
    pub at: Time,
}

/// Per-port monitor state.
#[derive(Debug, Clone)]
struct PortMonitor {
    window: VecDeque<(u64, u64)>, // (frames, errors) per poll
    frames_in_window: u64,
    errors_in_window: u64,
    last_snapshot: PortCounters,
    active: bool,
}

impl PortMonitor {
    fn new() -> PortMonitor {
        PortMonitor {
            window: VecDeque::new(),
            frames_in_window: 0,
            errors_in_window: 0,
            last_snapshot: PortCounters::default(),
            active: false,
        }
    }

    fn poll(&mut self, counters: PortCounters) -> f64 {
        let frames = counters.frames_rx_all - self.last_snapshot.frames_rx_all;
        let ok = counters.frames_rx_ok - self.last_snapshot.frames_rx_ok;
        let errors = frames - ok;
        self.last_snapshot = counters;
        self.window.push_back((frames, errors));
        self.frames_in_window += frames;
        self.errors_in_window += errors;
        while self.frames_in_window > WINDOW_FRAMES && self.window.len() > 1 {
            let (f, e) = self.window.pop_front().expect("non-empty");
            self.frames_in_window -= f;
            self.errors_in_window -= e;
        }
        if self.frames_in_window == 0 {
            0.0
        } else {
            self.errors_in_window as f64 / self.frames_in_window as f64
        }
    }
}

/// The corruption-monitoring daemon for one switch.
#[derive(Debug)]
pub struct Corruptd {
    switch_id: u32,
    ports: Vec<PortMonitor>,
    target_loss_rate: f64,
}

impl Corruptd {
    /// Monitor `n_ports` ports of switch `switch_id`, activating
    /// LinkGuardian with Eq. 2 copies toward `target_loss_rate`.
    pub fn new(switch_id: u32, n_ports: usize, target_loss_rate: f64) -> Corruptd {
        Corruptd {
            switch_id,
            ports: (0..n_ports).map(|_| PortMonitor::new()).collect(),
            target_loss_rate,
        }
    }

    /// Poll one port's counters. Returns a notice when the port crosses
    /// the activation threshold (deactivation notices are not modeled; the
    /// paper repairs links out of band, §3.6).
    pub fn poll(
        &mut self,
        port: usize,
        counters: PortCounters,
        now: Time,
    ) -> Option<CorruptionNotice> {
        let mon = &mut self.ports[port];
        let rate = mon.poll(counters);
        if !mon.active && rate >= ACTIVATION_THRESHOLD && rate > 0.0 {
            mon.active = true;
            Some(CorruptionNotice {
                observer_switch: self.switch_id,
                port,
                loss_rate: rate,
                retx_copies: retx_copies(rate, self.target_loss_rate),
                at: now,
            })
        } else {
            None
        }
    }

    /// Whether LinkGuardian has been activated for a port.
    pub fn is_active(&self, port: usize) -> bool {
        self.ports[port].active
    }

    /// Poll a port by reading `frames_rx_ok` / `frames_rx_all` from an
    /// [`lg_obs::MetricsRegistry`] snapshot instead of reaching into the
    /// switch directly — the same source the dashboards read. `inst` is
    /// the registry instance label the world used when snapshotting the
    /// port (e.g. `"sw_rx:1"`). Returns `None` (and does not advance the
    /// window) when the registry has no snapshot for that instance yet.
    pub fn poll_registry(
        &mut self,
        port: usize,
        registry: &lg_obs::MetricsRegistry,
        comp: &'static str,
        inst: &str,
        now: Time,
    ) -> Option<CorruptionNotice> {
        let ok = registry.latest_counter(comp, inst, "frames_rx_ok")?;
        let all = registry.latest_counter(comp, inst, "frames_rx_all")?;
        let counters = PortCounters {
            frames_rx_ok: ok,
            frames_rx_all: all,
            ..Default::default()
        };
        self.poll(port, counters, now)
    }
}

/// In-process publish/subscribe bus connecting `corruptd` daemons
/// (the paper uses Redis PubSub).
#[derive(Debug, Default)]
pub struct CorruptionBus {
    published: Vec<CorruptionNotice>,
    cursor_by_subscriber: std::collections::HashMap<u32, usize>,
}

impl CorruptionBus {
    /// An empty bus.
    pub fn new() -> CorruptionBus {
        CorruptionBus::default()
    }

    /// Publish a notice.
    pub fn publish(&mut self, n: CorruptionNotice) {
        self.published.push(n);
    }

    /// Drain notices not yet seen by `subscriber`.
    pub fn drain(&mut self, subscriber: u32) -> Vec<CorruptionNotice> {
        let cursor = self.cursor_by_subscriber.entry(subscriber).or_insert(0);
        let out = self.published[*cursor..].to_vec();
        *cursor = self.published.len();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(all: u64, ok: u64) -> PortCounters {
        PortCounters {
            frames_rx_all: all,
            frames_rx_ok: ok,
            ..Default::default()
        }
    }

    #[test]
    fn healthy_port_never_activates() {
        let mut d = Corruptd::new(1, 2, 1e-8);
        for i in 1..=10 {
            assert!(d
                .poll(
                    0,
                    counters(i * 1_000_000, i * 1_000_000),
                    Time::from_secs(i)
                )
                .is_none());
        }
        assert!(!d.is_active(0));
    }

    #[test]
    fn corrupting_port_activates_with_eq2_copies() {
        let mut d = Corruptd::new(7, 1, 1e-8);
        // 1e6 frames, 1000 errors → loss 1e-3 → N = 2
        let n = d
            .poll(0, counters(1_000_000, 999_000), Time::from_secs(1))
            .expect("activation");
        assert_eq!(n.observer_switch, 7);
        assert_eq!(n.port, 0);
        assert!((n.loss_rate - 1e-3).abs() < 1e-6);
        assert_eq!(n.retx_copies, 2);
        assert!(d.is_active(0));
        // already active: no duplicate notice
        assert!(d
            .poll(0, counters(2_000_000, 1_998_000), Time::from_secs(2))
            .is_none());
    }

    #[test]
    fn window_recovers_after_clean_period() {
        let d = Corruptd::new(1, 1, 1e-8);
        let mut m = PortMonitor::new();
        assert!(m.poll(counters(1_000, 900)) > 0.0);
        // long clean stretch dilutes the window but stays within it
        let r = m.poll(counters(2_000, 1_900));
        assert!((r - 0.05).abs() < 1e-9);
        let _ = d; // silence unused
    }

    #[test]
    fn poll_registry_reads_same_source() {
        let mut reg = lg_obs::MetricsRegistry::new();
        let mut d = Corruptd::new(3, 1, 1e-8);
        // No snapshot yet: nothing to poll.
        assert!(d
            .poll_registry(0, &reg, "switch_port", "sw_rx:0", Time::from_secs(1))
            .is_none());
        assert!(!d.is_active(0));
        // 1e6 frames, 1000 errors → loss 1e-3 → activation with N = 2.
        reg.record(
            1_000_000_000_000,
            "switch_port",
            "sw_rx:0",
            &counters(1_000_000, 999_000),
        );
        let n = d
            .poll_registry(0, &reg, "switch_port", "sw_rx:0", Time::from_secs(1))
            .expect("activation");
        assert!((n.loss_rate - 1e-3).abs() < 1e-6);
        assert_eq!(n.retx_copies, 2);
        assert!(d.is_active(0));
    }

    #[test]
    fn bus_pubsub_cursors() {
        let mut bus = CorruptionBus::new();
        let n = CorruptionNotice {
            observer_switch: 1,
            port: 0,
            loss_rate: 1e-4,
            retx_copies: 1,
            at: Time::ZERO,
        };
        bus.publish(n);
        assert_eq!(bus.drain(42).len(), 1);
        assert_eq!(bus.drain(42).len(), 0);
        bus.publish(n);
        bus.publish(n);
        assert_eq!(bus.drain(42).len(), 2);
        // a different subscriber sees everything from the start
        assert_eq!(bus.drain(43).len(), 3);
    }
}
