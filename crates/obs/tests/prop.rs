//! Property tests for the trace ring.

use lg_obs::trace::{Comp, Kind, TraceRecord, TraceRing};
use proptest::prelude::*;

fn rec(t_ps: u64, seq: u64) -> TraceRecord {
    TraceRecord {
        t_ps,
        uid: seq + 1,
        seq,
        aux: 0,
        inst: 0,
        comp: Comp::Port,
        kind: Kind::TxDone,
    }
}

proptest! {
    /// Wraparound keeps order: whatever the capacity and push count, a
    /// drain returns a contiguous suffix of the pushed sequence —
    /// record i always precedes record i+1, and in particular records
    /// sharing one sim-time tick are never reordered by the overwrite
    /// path.
    #[test]
    fn ring_wraparound_never_reorders(
        cap in 1usize..64,
        pushes in proptest::collection::vec(0u64..5, 0..300),
    ) {
        let mut ring = TraceRing::new(cap);
        // Non-decreasing timestamps with runs of equal ticks, as the
        // event loop produces; seq is the global emission index.
        let mut t = 0u64;
        let mut all = Vec::new();
        for (i, dt) in pushes.iter().enumerate() {
            t += dt; // dt = 0 keeps several records on one tick
            let r = rec(t, i as u64);
            all.push(r);
            ring.push(r);
        }
        let n = all.len();
        let kept = ring.drain();
        prop_assert_eq!(kept.len(), n.min(cap));
        prop_assert_eq!(ring.dropped(), 0, "drain resets drop accounting");
        // Exactly the newest records, in emission order.
        let expect = &all[n - kept.len()..];
        for (k, e) in kept.iter().zip(expect) {
            prop_assert_eq!(k.seq, e.seq);
            prop_assert_eq!(k.t_ps, e.t_ps);
        }
        // Within any one tick, seq (emission order) stays increasing.
        for w in kept.windows(2) {
            prop_assert!(w[0].t_ps <= w[1].t_ps);
            if w[0].t_ps == w[1].t_ps {
                prop_assert!(w[0].seq < w[1].seq, "same-tick records reordered");
            }
        }
    }

    /// Drop accounting matches exactly what fell off the ring.
    #[test]
    fn ring_drop_count_exact(cap in 1usize..32, n in 0usize..200) {
        let mut ring = TraceRing::new(cap);
        for i in 0..n {
            ring.push(rec(i as u64, i as u64));
        }
        prop_assert_eq!(ring.dropped() as usize, n.saturating_sub(cap));
        prop_assert_eq!(ring.len(), n.min(cap));
    }
}

mod timeseries_props {
    use lg_obs::{Ewma, WindowedRate};
    use proptest::prelude::*;

    proptest! {
        /// The incremental sliding-window rate equals a brute-force
        /// recount of the last `cap` buckets, at every step, whatever
        /// the push sequence — the eviction bookkeeping never drifts.
        #[test]
        fn windowed_rate_matches_brute_force_recount(
            cap in 1usize..12,
            buckets in proptest::collection::vec((0u64..1000, 0u64..100_000), 0..200),
        ) {
            let mut w = WindowedRate::new(cap);
            for (i, &(errors, frames)) in buckets.iter().enumerate() {
                // Errors can't exceed frames in real polls, but the
                // window must stay exact either way, so don't clamp.
                w.push(errors, frames);
                let tail = &buckets[i.saturating_sub(cap - 1)..=i];
                let num: u64 = tail.iter().map(|&(n, _)| n).sum();
                let den: u64 = tail.iter().map(|&(_, d)| d).sum();
                prop_assert_eq!(w.num(), num);
                prop_assert_eq!(w.den(), den);
                prop_assert_eq!(w.len(), tail.len());
                let expect = if den == 0 { 0.0 } else { num as f64 / den as f64 };
                prop_assert_eq!(w.rate(), expect);
            }
        }

        /// Half-life semantics: feeding a constant `v` into a
        /// zero-seeded Ewma for exactly `half_life` updates leaves the
        /// value within floating-point error of `v/2` of its target —
        /// i.e. the step response decays as 1 - 0.5^(n/half_life).
        #[test]
        fn ewma_half_life_step_response(
            half_life in 1u32..64,
            v in 1.0f64..1e9,
        ) {
            let mut e = Ewma::with_half_life(half_life as f64);
            e.update(0.0); // seed at zero so the step starts from 0
            for _ in 0..half_life {
                e.update(v);
            }
            let expect = v * 0.5;
            prop_assert!(
                (e.value() - expect).abs() <= 1e-9 * v,
                "after one half-life the gap to the target must have halved: \
                 value {} expected {}", e.value(), expect
            );
            // And it keeps halving: another half-life closes half the rest.
            for _ in 0..half_life {
                e.update(v);
            }
            prop_assert!((e.value() - 0.75 * v).abs() <= 1e-9 * v);
        }

        /// Monotone approach: a constant input never overshoots, and
        /// the value is strictly increasing toward it.
        #[test]
        fn ewma_never_overshoots(
            alpha in 0.01f64..1.0,
            v in 1.0f64..1e6,
            n in 1usize..100,
        ) {
            let mut e = Ewma::new(alpha);
            e.update(0.0);
            let mut prev = 0.0;
            for _ in 0..n {
                let cur = e.update(v);
                prop_assert!(cur <= v + f64::EPSILON * v, "overshoot: {cur} > {v}");
                prop_assert!(cur >= prev, "non-monotone: {cur} < {prev}");
                prev = cur;
            }
        }
    }
}
