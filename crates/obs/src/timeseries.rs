//! Streaming time-series telemetry: windowed samples kept online.
//!
//! Components are sampled on a periodic sim event (the world's
//! `Ev::Sample`); each sampled metric feeds a [`Series`] that maintains
//! an [`Ewma`] plus a fixed-capacity [`SeriesRing`] of recent windows,
//! so every published point carries the window aggregates
//! (min/max/mean/percentile) alongside the raw value. [`WindowedRate`]
//! is the ratio counterpart (errors over frames across the last N
//! polls) used by the health estimator and `corruptd`.
//!
//! Everything here is driven by sim time and window ids — no wall
//! clock — so dumps stay byte-identical at any `--threads` value.

use crate::json::JsonLine;

/// Exponentially weighted moving average parameterized by half-life.
///
/// With `alpha = 1 - 0.5^(1/half_life)`, an input step decays to half
/// its weight after `half_life` updates: feeding a constant `v` into a
/// zero-seeded Ewma for `n` updates yields `v * (1 - 0.5^(n/half_life))`.
#[derive(Debug, Clone, Copy)]
pub struct Ewma {
    alpha: f64,
    value: f64,
    seeded: bool,
}

impl Ewma {
    /// An Ewma with an explicit smoothing factor in `(0, 1]`.
    pub fn new(alpha: f64) -> Ewma {
        assert!(alpha > 0.0 && alpha <= 1.0, "alpha in (0,1]: {alpha}");
        Ewma {
            alpha,
            value: 0.0,
            seeded: false,
        }
    }

    /// An Ewma whose memory of a sample halves every `half_life` updates.
    pub fn with_half_life(half_life: f64) -> Ewma {
        assert!(half_life > 0.0, "half-life must be positive: {half_life}");
        Ewma::new(1.0 - 0.5f64.powf(1.0 / half_life))
    }

    /// The smoothing factor.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Feed one sample; the first sample seeds the average directly.
    /// Returns the updated value.
    pub fn update(&mut self, v: f64) -> f64 {
        if self.seeded {
            self.value += self.alpha * (v - self.value);
        } else {
            self.value = v;
            self.seeded = true;
        }
        self.value
    }

    /// Current average (0.0 before the first sample).
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Whether any sample has been fed yet.
    pub fn is_seeded(&self) -> bool {
        self.seeded
    }
}

/// Sliding-window ratio: `sum(num) / sum(den)` over the last `windows`
/// pushes. Pushing beyond capacity evicts the oldest bucket, so the
/// estimate tracks only the recent window — the shape `corruptd` needs
/// to see a burst immediately and to forget it once the link is clean.
#[derive(Debug, Clone)]
pub struct WindowedRate {
    buf: Vec<(u64, u64)>,
    head: usize,
    len: usize,
    num_sum: u64,
    den_sum: u64,
}

impl WindowedRate {
    /// A window spanning the last `windows` pushes (`windows >= 1`).
    pub fn new(windows: usize) -> WindowedRate {
        assert!(windows >= 1, "window must hold at least one bucket");
        WindowedRate {
            buf: vec![(0, 0); windows],
            head: 0,
            len: 0,
            num_sum: 0,
            den_sum: 0,
        }
    }

    /// Push one bucket (e.g. `(errors, frames)` for a poll interval).
    pub fn push(&mut self, num: u64, den: u64) {
        if self.len == self.buf.len() {
            let (n, d) = self.buf[self.head];
            self.num_sum -= n;
            self.den_sum -= d;
        } else {
            self.len += 1;
        }
        self.buf[self.head] = (num, den);
        self.head = (self.head + 1) % self.buf.len();
        self.num_sum += num;
        self.den_sum += den;
    }

    /// `sum(num) / sum(den)` over the window; 0.0 on an empty window.
    pub fn rate(&self) -> f64 {
        if self.den_sum == 0 {
            0.0
        } else {
            self.num_sum as f64 / self.den_sum as f64
        }
    }

    /// Numerator total over the window.
    pub fn num(&self) -> u64 {
        self.num_sum
    }

    /// Denominator total over the window.
    pub fn den(&self) -> u64 {
        self.den_sum
    }

    /// Buckets currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been pushed yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Fixed-capacity ring of `(window_id, value)` samples; pushing past
/// capacity overwrites the oldest. Window aggregates are computed over
/// whatever the ring currently holds.
#[derive(Debug, Clone)]
pub struct SeriesRing {
    buf: Vec<(u64, f64)>,
    head: usize,
    len: usize,
}

impl SeriesRing {
    /// A ring holding the last `cap` samples (`cap >= 1`).
    pub fn new(cap: usize) -> SeriesRing {
        assert!(cap >= 1, "ring must hold at least one sample");
        SeriesRing {
            buf: vec![(0, 0.0); cap],
            head: 0,
            len: 0,
        }
    }

    /// Append a sample, evicting the oldest at capacity.
    pub fn push(&mut self, window_id: u64, value: f64) {
        self.buf[self.head] = (window_id, value);
        self.head = (self.head + 1) % self.buf.len();
        self.len = (self.len + 1).min(self.buf.len());
    }

    /// Samples currently held.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterate the held samples, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = (u64, f64)> + '_ {
        let cap = self.buf.len();
        let start = (self.head + cap - self.len) % cap;
        (0..self.len).map(move |i| self.buf[(start + i) % cap])
    }

    /// Smallest value over the ring (0.0 when empty).
    pub fn min(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter().map(|(_, v)| v).fold(f64::INFINITY, f64::min)
    }

    /// Largest value over the ring (0.0 when empty).
    pub fn max(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter()
            .map(|(_, v)| v)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Mean over the ring (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        self.iter().map(|(_, v)| v).sum::<f64>() / self.len as f64
    }

    /// Percentile over the ring by nearest-rank on a sorted copy
    /// (`q` in `[0, 1]`; 0.0 when empty).
    pub fn percentile(&self, q: f64) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let mut vals: Vec<f64> = self.iter().map(|(_, v)| v).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let idx = ((q.clamp(0.0, 1.0) * (vals.len() - 1) as f64).round()) as usize;
        vals[idx]
    }
}

/// One tracked metric: its ring of recent windows plus an Ewma.
#[derive(Debug, Clone)]
struct Series {
    ring: SeriesRing,
    ewma: Ewma,
    last_window: Option<u64>,
}

/// A stored sample point. Only the raw value and the (online) Ewma are
/// captured on the hot path; the trailing-window aggregates are a pure
/// function of each series' preceding values, so they are recomputed by
/// replay at drain time — rendering is also when the run label becomes
/// known.
#[derive(Debug, Clone, Copy)]
struct Row {
    t_ps: u64,
    window_id: u64,
    key: usize,
    value: f64,
    ewma: f64,
}

/// A bank of named series, one per `(comp, inst, name)`, accumulating
/// one `timeseries` JSONL row per sample.
///
/// Window ids must be fed in strictly increasing order per series;
/// the bank panics (debug) on a regression since downstream consumers
/// (`obs_validate`) reject non-monotone window ids.
pub struct SeriesBank {
    ring_cap: usize,
    half_life: f64,
    keys: Vec<(String, String, String)>,
    series: Vec<Series>,
    rows: Vec<Row>,
    /// Reused percentile buffer: `sample` runs on every tick of the sim's
    /// sampling event, so it must not allocate.
    scratch: Vec<f64>,
}

impl SeriesBank {
    /// A bank whose series keep `ring_cap` windows and smooth with the
    /// given Ewma half-life (in windows).
    pub fn new(ring_cap: usize, half_life: f64) -> SeriesBank {
        SeriesBank {
            ring_cap,
            half_life,
            keys: Vec::new(),
            series: Vec::new(),
            rows: Vec::new(),
            scratch: Vec::new(),
        }
    }

    fn series_idx(&mut self, comp: &str, inst: &str, name: &str) -> usize {
        if let Some(i) = self
            .keys
            .iter()
            .position(|(c, i2, n)| c == comp && i2 == inst && n == name)
        {
            return i;
        }
        self.keys
            .push((comp.to_string(), inst.to_string(), name.to_string()));
        self.series.push(Series {
            ring: SeriesRing::new(self.ring_cap),
            ewma: Ewma::with_half_life(self.half_life),
            last_window: None,
        });
        self.keys.len() - 1
    }

    /// Intern a series key, returning a stable index for
    /// [`SeriesBank::sample_at`] — callers on a per-event hot path
    /// intern once and skip the string comparisons on every sample.
    pub fn key(&mut self, comp: &str, inst: &str, name: &str) -> usize {
        self.series_idx(comp, inst, name)
    }

    /// Feed one sampled value for a metric at sim-time `t_ps`, window
    /// `window_id` (strictly increasing per metric).
    pub fn sample(
        &mut self,
        t_ps: u64,
        window_id: u64,
        comp: &str,
        inst: &str,
        name: &str,
        value: f64,
    ) {
        let idx = self.series_idx(comp, inst, name);
        self.sample_at(idx, t_ps, window_id, value);
    }

    /// Hot-path variant of [`SeriesBank::sample`] taking an index
    /// interned with [`SeriesBank::key`].
    pub fn sample_at(&mut self, idx: usize, t_ps: u64, window_id: u64, value: f64) {
        let s = &mut self.series[idx];
        if let Some(last) = s.last_window {
            debug_assert!(
                window_id > last,
                "window ids must be monotone: {window_id} after {last}"
            );
        }
        s.last_window = Some(window_id);
        let ewma = s.ewma.update(value);
        self.rows.push(Row {
            t_ps,
            window_id,
            key: idx,
            value,
            ewma,
        });
    }

    /// Number of accumulated sample rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no samples have been fed.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Latest Ewma of a series, if it has been sampled.
    pub fn ewma(&self, comp: &str, inst: &str, name: &str) -> Option<f64> {
        let i = self
            .keys
            .iter()
            .position(|(c, i2, n)| c == comp && i2 == inst && n == name)?;
        Some(self.series[i].ewma.value())
    }

    /// Render every accumulated row as a `timeseries` JSONL line tagged
    /// with the run label, in sample order, and clear the buffer.
    pub fn drain_jsonl(&mut self, run: &str) -> Vec<String> {
        let rows = std::mem::take(&mut self.rows);
        rows.into_iter()
            .map(|r| {
                // Replay this sample into its series' ring and compute
                // the trailing-window aggregates now, off the hot path.
                // Ring state persists across drains, so repeated
                // publishes continue seamlessly.
                let s = &mut self.series[r.key];
                s.ring.push(r.window_id, r.value);
                let (mut mn, mut mx, mut sum) = (f64::INFINITY, f64::NEG_INFINITY, 0.0);
                self.scratch.clear();
                for (_, v) in s.ring.iter() {
                    mn = mn.min(v);
                    mx = mx.max(v);
                    sum += v;
                    self.scratch.push(v);
                }
                let n = self.scratch.len();
                let p99_idx = ((0.99 * (n - 1) as f64).round()) as usize;
                let (_, p99, _) = self.scratch.select_nth_unstable_by(p99_idx, |a, b| {
                    a.partial_cmp(b).expect("no NaN samples")
                });
                let win_p99 = *p99;
                let (comp, inst, name) = &self.keys[r.key];
                let mut l = JsonLine::new();
                l.str("type", "timeseries")
                    .u64("t_ps", r.t_ps)
                    .u64("window_id", r.window_id)
                    .str("run", run)
                    .str("comp", comp)
                    .str("inst", inst)
                    .str("name", name)
                    .f64("value", r.value)
                    .f64("ewma", r.ewma)
                    .f64("win_min", mn)
                    .f64("win_max", mx)
                    .f64("win_mean", sum / n as f64)
                    .f64("win_p99", win_p99);
                l.finish()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ewma_half_life_decay() {
        // Zero-seeded, then half_life updates of 1.0 lands exactly on 0.5.
        let mut e = Ewma::with_half_life(10.0);
        e.update(0.0);
        for _ in 0..10 {
            e.update(1.0);
        }
        assert!((e.value() - 0.5).abs() < 1e-12, "{}", e.value());
        // Twice the half-life: three quarters of the way there.
        for _ in 0..10 {
            e.update(1.0);
        }
        assert!((e.value() - 0.75).abs() < 1e-12, "{}", e.value());
    }

    #[test]
    fn ewma_first_sample_seeds() {
        let mut e = Ewma::with_half_life(4.0);
        assert!(!e.is_seeded());
        assert_eq!(e.update(42.0), 42.0);
        assert!(e.is_seeded());
    }

    #[test]
    fn windowed_rate_evicts_old_buckets() {
        let mut w = WindowedRate::new(3);
        assert_eq!(w.rate(), 0.0);
        w.push(1, 100);
        w.push(1, 100);
        w.push(1, 100);
        assert!((w.rate() - 0.01).abs() < 1e-12);
        // A clean bucket evicts one dirty one.
        w.push(0, 100);
        assert!((w.rate() - 2.0 / 300.0).abs() < 1e-12);
        w.push(0, 100);
        w.push(0, 100);
        assert_eq!(w.rate(), 0.0, "window fully clean again");
        assert_eq!(w.den(), 300);
    }

    #[test]
    fn series_ring_wraps_and_aggregates() {
        let mut r = SeriesRing::new(4);
        assert_eq!(r.percentile(0.5), 0.0);
        for (i, v) in [5.0, 1.0, 9.0, 3.0, 7.0].iter().enumerate() {
            r.push(i as u64, *v);
        }
        // capacity 4: the 5.0 fell out
        assert_eq!(r.len(), 4);
        assert_eq!(r.min(), 1.0);
        assert_eq!(r.max(), 9.0);
        assert!((r.mean() - 5.0).abs() < 1e-12);
        assert_eq!(r.percentile(1.0), 9.0);
        assert_eq!(r.percentile(0.0), 1.0);
        let ids: Vec<u64> = r.iter().map(|(w, _)| w).collect();
        assert_eq!(ids, vec![1, 2, 3, 4], "oldest first");
    }

    #[test]
    fn bank_emits_tagged_monotone_rows() {
        let mut b = SeriesBank::new(8, 4.0);
        b.sample(1_000, 1, "switch_port", "sw_tx:0", "qdepth_bytes", 100.0);
        b.sample(2_000, 2, "switch_port", "sw_tx:0", "qdepth_bytes", 300.0);
        b.sample(2_000, 2, "lg_receiver", "fwd", "rx_buffer_bytes", 50.0);
        assert_eq!(b.len(), 3);
        let ewma = b.ewma("switch_port", "sw_tx:0", "qdepth_bytes").unwrap();
        assert!(ewma > 100.0 && ewma < 300.0);
        let lines = b.drain_jsonl("fig9/a");
        assert!(b.is_empty());
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("{\"type\":\"timeseries\""));
        assert!(lines[0].contains("\"run\":\"fig9/a\""));
        assert!(lines[1].contains("\"window_id\":2"));
        // parses as JSON
        for l in &lines {
            crate::json::parse(l).unwrap();
        }
    }
}
