//! The `Strategy` trait and the built-in strategies for ranges, tuples
//! and constant values.

use crate::test_runner::TestRng;
use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// A generator of test values.
///
/// Unlike the real proptest (which builds shrinkable value *trees*),
/// this stand-in samples plain values; a failing case reports its inputs
/// instead of shrinking them.
pub trait Strategy {
    /// The generated value type.
    type Value: Debug;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values with a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i128 + rng.below(span + 1) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn sample(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
}

/// One weighted arm of a [`OneOf`]: `(weight, boxed sampler)`.
pub type WeightedArm<T> = (u32, Box<dyn Fn(&mut TestRng) -> T>);

/// Weighted union of same-typed strategies, built by the
/// [`prop_oneof!`](crate::prop_oneof) macro. Each sample first picks an
/// arm (probability proportional to its weight), then samples it.
pub struct OneOf<T> {
    arms: Vec<WeightedArm<T>>,
}

impl<T> OneOf<T> {
    /// A union over `(weight, sampler)` arms; weights must sum > 0.
    pub fn new(arms: Vec<WeightedArm<T>>) -> OneOf<T> {
        assert!(
            arms.iter().map(|(w, _)| u64::from(*w)).sum::<u64>() > 0,
            "prop_oneof: weights sum to zero"
        );
        OneOf { arms }
    }
}

impl<T: Debug> Strategy for OneOf<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let total: u64 = self.arms.iter().map(|(w, _)| u64::from(*w)).sum();
        let mut pick = rng.below(total);
        for (w, f) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return f(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick within total")
    }
}
