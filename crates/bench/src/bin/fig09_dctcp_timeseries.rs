//! Figure 9: a single DCTCP flow on a 25 G link. Corruption (1e-3) starts
//! partway in; LinkGuardian is enabled later. (a) with backpressure,
//! (b) with backpressure disabled — showing Rx-buffer overflow and
//! end-to-end retransmissions.
//!
//! The paper's timeline spans 14 s; we default to a compressed 60 ms
//! timeline (corruption at 10 ms, LG at 30 ms) which shows the same three
//! regimes. `--paper-scale` stretches to seconds.
//!
//! Usage: `cargo run --release -p lg-bench --bin fig09_dctcp_timeseries
//! [--ms 60] [--no-bp] [--bursty]`
//!
//! `--bursty` switches the corruption to a Gilbert–Elliott process (mean
//! burst 3) — the paper observed that its 25G/1e-3 losses were *not*
//! i.i.d. (§4.1); under bursty loss the `--no-bp` run shows the Fig 9b
//! catastrophe (reordering-buffer overflow, mass end-to-end
//! retransmissions) clearly.

use lg_bench::{arg, banner, flag, sweep};
use lg_link::{LinkSpeed, LossModel};
use lg_sim::{Duration, Time};
use lg_testbed::{time_series, TimeSeriesScenario};
use lg_transport::CcVariant;

fn main() {
    let _obs = lg_bench::obs::session("fig09_dctcp_timeseries");
    banner(
        "Figure 9",
        "DCTCP on a 25G link: corruption starts, then LinkGuardian starts",
    );
    let total_ms: u64 = arg("--ms", 60);
    let disable_backpressure = flag("--no-bp");
    let loss = if flag("--bursty") {
        LossModel::bursty(1e-3, 3.0)
    } else {
        LossModel::Iid { rate: 1e-3 }
    };
    let s = TimeSeriesScenario {
        speed: LinkSpeed::G25,
        variant: CcVariant::Dctcp,
        loss,
        corruption_at: Time::from_ms(total_ms / 6),
        lg_at: Time::from_ms(total_ms / 2),
        end: Time::from_ms(total_ms),
        disable_backpressure,
        nb_mode: false,
        sample_interval: Duration::from_ms((total_ms / 60).max(1)),
        seed: arg("--seed", 9),
    };
    println!(
        "timeline: corruption(1e-3) at {} ms, LinkGuardian at {} ms, end {} ms; backpressure {}",
        total_ms / 6,
        total_ms / 2,
        total_ms,
        if disable_backpressure {
            "DISABLED (Fig 9b)"
        } else {
            "enabled (Fig 9a)"
        }
    );
    // A single scenario, but routed through the sweep driver so every
    // figure binary shares one execution path (and honors --threads).
    let r = sweep::run(std::slice::from_ref(&s), time_series)
        .pop()
        .expect("one result for one scenario");
    println!(
        "{:>8} {:>12} {:>12} {:>12} {:>10}",
        "t(ms)", "rate(Gbps)", "qdepth(KB)", "rxbuf(KB)", "e2e_retx"
    );
    let q = &r.qdepth;
    let rx = &r.rx_buffer;
    let e2e = &r.e2e_retx;
    for (i, &(t, gbps)) in r.goodput.points().iter().enumerate() {
        let qv = q.points().get(i).map(|p| p.1).unwrap_or(0.0) / 1024.0;
        let rv = rx.points().get(i).map(|p| p.1).unwrap_or(0.0) / 1024.0;
        let ev = e2e.points().get(i).map(|p| p.1).unwrap_or(0.0);
        println!(
            "{:>8.1} {:>12.2} {:>12.1} {:>12.1} {:>10.0}",
            t.as_secs_f64() * 1e3,
            gbps,
            qv,
            rv,
            ev
        );
    }
    println!("rx-buffer overflow drops: {}", r.rx_overflow_drops);
    println!();
    println!("paper (9a): throughput collapses under corruption, recovers to the");
    println!("  effective link speed once LG starts; qdepth builds to the ECN knee.");
    println!("paper (9b, --no-bp): Rx buffer overflows; many e2e retransmissions.");
}
