//! Packet-engine rollup shared by the fabric figure binaries.
//!
//! `fig15_fabric_week` and `fig16_fabric_year` answer their questions
//! analytically (per-link loss rollups over maintenance timescales).
//! With `--engine packet` they additionally run the packet-level fabric
//! ([`lg_fabric::run_packet`]) on the same pod geometry as a
//! *cross-check*: microscopic timescale (hundreds of microseconds, not
//! weeks), but real frames through real queues — the FCT tail and the
//! drop ledger come from individual corruption draws instead of closed
//! forms. Everything printed here is a function of the simulation
//! outcome only, so the rollup is byte-identical at any
//! `--shards`/`--threads` layout; CI `cmp`s the stdout of two layouts.

use lg_fabric::{run_packet, PktFabricConfig, PktPolicy};
use lg_sim::Time;

/// Picoseconds → microseconds for table display.
fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Run the packet engine at `pods` pods of the fabric-scale preset and
/// print the per-policy rollup table. Returns after printing; the
/// analytic path is skipped entirely when the caller selects this
/// engine.
pub fn packet_rollup(pods: u32, shards: u32, threads: usize, seed: u64, horizon_us: u64) {
    let mut cfg = PktFabricConfig::fabric_scale(seed);
    if pods > 0 {
        cfg.geom.pods = pods;
    }
    cfg.shards = shards;
    cfg.threads = threads;
    cfg.horizon = Time::from_us(horizon_us);
    // `--health-log`/`--metrics-out` on the figure binaries reach the
    // packet engine too: the rollup publishes merged per-link health
    // transitions (and the rest of the telemetry plane) to the sink.
    cfg.telemetry = crate::obs::pkt_telemetry();

    println!(
        "packet engine: {} pods / {} links, horizon {} us, seed {}",
        cfg.geom.pods,
        cfg.geom.n_links(),
        horizon_us,
        seed,
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>9} {:>9} {:>9} {:>10} {:>9} {:>9}",
        "policy",
        "flows",
        "done",
        "p50(us)",
        "p99(us)",
        "p999(us)",
        "drops",
        "recovered",
        "src.retx",
        "overflow"
    );
    let mut p999 = Vec::new();
    for (label, policy) in [
        ("no-LG (RTO)", PktPolicy::None),
        ("LinkGuardian", PktPolicy::LinkGuardian),
    ] {
        let mut c = cfg.clone();
        c.policy = policy;
        let r = run_packet(&c);
        // Layout-dependent accounting stays on stderr.
        eprintln!(
            "{label}: {} events in {} windows, {} cross-shard frames, \
             budget hwm {} B / denials {}",
            r.totals.events, r.stats.windows, r.stats.messages, r.mem.hwm_bytes, r.mem.denials,
        );
        let d = r.fct_digest;
        println!(
            "{:<14} {:>9} {:>9} {:>9.2} {:>9.2} {:>9.2} {:>9} {:>10} {:>9} {:>9}",
            label,
            r.totals.flows,
            r.totals.flows_completed,
            us(d.p50),
            us(d.p99),
            us(d.p999),
            r.totals.corrupt_drops,
            r.totals.recoveries,
            r.totals.source_retx,
            r.totals.overflow_drops,
        );
        crate::obs::publish_pkt_run(label, &c, &r);
        p999.push(d.p999);
    }
    println!(
        "p999 FCT: {:.2} us -> {:.2} us ({:.1}x): the packet engine reproduces the",
        us(p999[0]),
        us(p999[1]),
        us(p999[0]) / us(p999[1]).max(1e-9),
    );
    println!("analytic story frame-by-frame — corruption RTOs drive the tail, LG masks them.");
}
