//! Shared observability CLI for the experiment binaries.
//!
//! Every figure/table binary accepts these extra flags, parsed once at
//! the top of `main` by [`session`]:
//!
//! * `--metrics-out <file>` — enable the process-wide JSONL sink and
//!   write the full observability dump (metrics snapshots, trace
//!   records, wall-clock profiles) there when the binary exits;
//! * `--timeseries-out <file>` — route `timeseries` records (the
//!   windowed telemetry samples) into their own JSONL file;
//! * `--health-log <file>` — route `health_event` records (link-health
//!   transitions) into their own JSONL file;
//! * `--trace` — enable packet-level trace records ([`Level::Pkt`]);
//! * `--trace-level <off|ctl|pkt>` — set the trace level explicitly
//!   (overrides `--trace`);
//! * `--trace-cap <records>` — size of the overwrite-oldest trace ring
//!   (default 65536; raise it when an analysis pass needs the whole
//!   packet trace of a long run, e.g. `obs_analyze` FCT attribution).
//!
//! Any of the three output flags enables the sink; each written file
//! starts with its own `meta` line naming the binary and the schema
//! version (`schema/obs-schema.json`), followed by the matching sink
//! lines in deterministic key order — identical at any `--threads`
//! value. Records routed to a dedicated file are removed from the
//! `--metrics-out` dump (and discarded entirely if only a subset of the
//! flags was given). None of these flags change what the binary prints
//! on stdout, so golden figure output stays byte-identical with
//! observability on.

use lg_obs::trace::Level;
use lg_obs::JsonLine;
use std::io::Write;
use std::path::PathBuf;

/// Observability schema version written to the `meta` line; bump in
/// lockstep with `schema/obs-schema.json`.
pub const SCHEMA_VERSION: u64 = 2;

/// RAII guard for one binary's observability session. On drop it writes
/// the JSONL dumps (if any of the output flags was given), then disables
/// the sink and the trace level so tests sharing the process stay clean.
pub struct Session {
    bin: &'static str,
    out: Option<PathBuf>,
    ts_out: Option<PathBuf>,
    health_out: Option<PathBuf>,
}

/// Parse the shared observability flags and start a session. Call first
/// thing in `main`; keep the returned guard alive for the whole run.
pub fn session(bin: &'static str) -> Session {
    let args: Vec<String> = std::env::args().collect();
    let path_arg = |flag: &str| -> Option<PathBuf> {
        match crate::try_arg::<String>(&args, flag) {
            Ok(v) => v.map(PathBuf::from),
            Err(msg) => {
                eprintln!("error: {msg}");
                std::process::exit(2);
            }
        }
    };
    let out = path_arg("--metrics-out");
    let ts_out = path_arg("--timeseries-out");
    let health_out = path_arg("--health-log");
    let level = match crate::try_arg::<String>(&args, "--trace-level") {
        Ok(Some(s)) => match Level::parse(&s) {
            Some(l) => l,
            None => {
                eprintln!("error: invalid --trace-level {s:?} (off|ctl|pkt)");
                std::process::exit(2);
            }
        },
        Ok(None) => {
            if crate::flag("--trace") {
                Level::Pkt
            } else {
                Level::Off
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    lg_obs::trace::set_level(level);
    match crate::try_arg::<usize>(&args, "--trace-cap") {
        Ok(Some(cap)) => lg_obs::trace::set_ring_capacity(cap),
        Ok(None) => {}
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    }
    if out.is_some() || ts_out.is_some() || health_out.is_some() {
        lg_obs::sink::enable_metrics();
    }
    Session {
        bin,
        out,
        ts_out,
        health_out,
    }
}

/// Publish the per-link health transitions of a fabric sweep to the
/// sink, one run label per config (e.g. `c50/CorrOptOnly`). Lines are
/// keyed by label in `cfgs` order, so `drain_sorted` output is
/// byte-identical at any `--threads` value. No-op when the sink is off.
pub fn publish_fabric_health(
    cfgs: &[lg_fabric::FabricSimConfig],
    results: &[lg_fabric::FabricSimResult],
) {
    if !lg_obs::sink::metrics_enabled() {
        return;
    }
    for (cfg, res) in cfgs.iter().zip(results) {
        let run = format!("c{:.0}/{}", cfg.constraint * 100.0, cfg.policy.label());
        let lines: Vec<String> = res
            .health_events
            .iter()
            .map(|ev| ev.to_json_line(&run))
            .collect();
        lg_obs::sink::submit_all(&format!("health/{run}"), lines);
    }
}

/// Write one dump: a fresh `meta` line, then `lines`.
fn write_dump(path: &PathBuf, bin: &str, lines: Vec<String>) {
    let mut meta = JsonLine::new();
    meta.str("type", "meta")
        .u64("schema", SCHEMA_VERSION)
        .str("bin", bin);
    let mut all = vec![meta.finish()];
    all.extend(lines);
    let n = all.len();
    let mut doc = all.join("\n");
    doc.push('\n');
    match std::fs::File::create(path).and_then(|mut f| f.write_all(doc.as_bytes())) {
        Ok(()) => eprintln!("wrote {n} observability records to {}", path.display()),
        Err(e) => eprintln!("error writing {}: {e}", path.display()),
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        if self.out.is_some() || self.ts_out.is_some() || self.health_out.is_some() {
            // One drain, partitioned by record type: dedicated outputs
            // claim their lines, the main dump keeps the rest.
            let mut main_lines = Vec::new();
            let mut ts_lines = Vec::new();
            let mut health_lines = Vec::new();
            for line in lg_obs::sink::drain_sorted() {
                if self.ts_out.is_some() && line.contains("\"type\":\"timeseries\"") {
                    ts_lines.push(line);
                } else if self.health_out.is_some() && line.contains("\"type\":\"health_event\"") {
                    health_lines.push(line);
                } else {
                    main_lines.push(line);
                }
            }
            if let Some(path) = self.out.take() {
                write_dump(&path, self.bin, main_lines);
            }
            if let Some(path) = self.ts_out.take() {
                write_dump(&path, self.bin, ts_lines);
            }
            if let Some(path) = self.health_out.take() {
                write_dump(&path, self.bin, health_lines);
            }
        }
        lg_obs::sink::disable_and_clear();
        lg_obs::trace::set_level(Level::Off);
        lg_obs::trace::reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn session_defaults_are_off() {
        // No flags in the test harness argv: level off, no sink.
        let s = session("test_bin");
        assert_eq!(lg_obs::trace::level(), Level::Off);
        assert!(!lg_obs::sink::metrics_enabled());
        drop(s);
    }

    #[test]
    fn dump_shape_round_trips() {
        let dir = std::env::temp_dir().join("lg_obs_session_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dump.jsonl");
        {
            let s = Session {
                bin: "test_bin",
                out: Some(path.clone()),
                ts_out: None,
                health_out: None,
            };
            lg_obs::sink::enable_metrics();
            lg_obs::sink::submit(
                "a",
                "{\"type\":\"trace_summary\",\"records\":0,\"dropped\":0}".into(),
            );
            drop(s);
        }
        let doc = std::fs::read_to_string(&path).unwrap();
        let schema_doc = include_str!("../../../schema/obs-schema.json");
        let schema = lg_obs::schema::Schema::parse(schema_doc).unwrap();
        let counts = schema.validate(&doc).unwrap();
        let total: usize = counts.iter().map(|(_, n)| n).sum();
        assert_eq!(total, 2, "meta + submitted line");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn dedicated_outputs_partition_the_drain() {
        let dir = std::env::temp_dir().join("lg_obs_session_split_test");
        std::fs::create_dir_all(&dir).unwrap();
        let (main_p, ts_p, health_p) = (
            dir.join("dump.jsonl"),
            dir.join("ts.jsonl"),
            dir.join("health.jsonl"),
        );
        {
            let s = Session {
                bin: "test_bin",
                out: Some(main_p.clone()),
                ts_out: Some(ts_p.clone()),
                health_out: Some(health_p.clone()),
            };
            lg_obs::sink::enable_metrics();
            lg_obs::sink::submit(
                "a",
                "{\"type\":\"trace_summary\",\"records\":0,\"dropped\":0}".into(),
            );
            lg_obs::sink::submit(
                "a",
                "{\"type\":\"timeseries\",\"t_ps\":1,\"window_id\":1,\"run\":\"r\",\
                 \"comp\":\"c\",\"inst\":\"i\",\"name\":\"n\",\"value\":1.0,\"ewma\":1.0}"
                    .into(),
            );
            lg_obs::sink::submit(
                "a",
                "{\"type\":\"health_event\",\"t_ps\":1,\"window_id\":1,\"run\":\"r\",\
                 \"comp\":\"c\",\"inst\":\"i\",\"from\":\"healthy\",\"to\":\"degraded\",\
                 \"rate\":1e-7}"
                    .into(),
            );
            drop(s);
        }
        let schema_doc = include_str!("../../../schema/obs-schema.json");
        let schema = lg_obs::schema::Schema::parse(schema_doc).unwrap();
        for (path, want_ty) in [
            (&main_p, "trace_summary"),
            (&ts_p, "timeseries"),
            (&health_p, "health_event"),
        ] {
            let doc = std::fs::read_to_string(path).unwrap();
            schema.validate(&doc).unwrap();
            assert_eq!(doc.lines().count(), 2, "{want_ty}: meta + 1 record");
            assert!(
                doc.lines().nth(1).unwrap().contains(want_ty),
                "{want_ty} routed to {}",
                path.display()
            );
            std::fs::remove_file(path).ok();
        }
    }
}
