//! Figure 16: CDFs over a year-long simulation of (a) the gain in total
//! penalty and (b) the decrease in least capacity per pod, for
//! LinkGuardian + CorrOpt vs vanilla CorrOpt at 50% and 75% constraints.
//!
//! Usage: `cargo run --release -p lg-bench --bin fig16_fabric_year
//! [--pods 260] [--days 365] [--sample-hours 4] [--threads N]
//! [--engine analytic|packet] [--shards 8] [--horizon-us 400]
//! [--guardd]`
//!
//! `--guardd` appends year-long runs driven by the `lg-guardd` control
//! plane (budgeted decisions from the observed health feed); their
//! decision journals reach `--guard-log`/`--metrics-out`. Default
//! stdout (no flag) is unchanged.
//!
//! The four constraint × policy simulations run in parallel; output is
//! identical at any `--threads` value.
//!
//! `--engine packet` swaps the analytic rollup for the packet-level
//! fabric ([`lg_bench::pktroll`]) on the same pod geometry — the same
//! cross-check `fig15_fabric_week --engine packet` runs, kept on both
//! binaries so either figure can be sanity-checked frame-by-frame.

use lg_bench::{arg, banner, sweep};
use lg_fabric::{run_many, FabricSimConfig, Policy};

fn main() {
    let _obs = lg_bench::obs::session("fig16_fabric_year");
    banner(
        "Figure 16",
        "year-long CDFs: penalty gain and capacity decrease (LG+CorrOpt vs CorrOpt)",
    );
    let pods: u32 = arg("--pods", 260u32);
    let days: f64 = arg("--days", 365.0);
    let sample_hours: f64 = arg("--sample-hours", 4.0);
    let seed: u64 = arg("--seed", 16);
    let engine: String = arg("--engine", "analytic".to_string());
    match engine.as_str() {
        "packet" => {
            let shards: u32 = arg("--shards", 8);
            let threads: usize = arg("--threads", shards as usize);
            let horizon_us: u64 = arg("--horizon-us", 400);
            lg_bench::pktroll::packet_rollup(pods, shards, threads, seed, horizon_us);
            return;
        }
        "analytic" => {}
        other => {
            eprintln!("error: unknown --engine {other:?} (expected analytic or packet)");
            std::process::exit(2);
        }
    }

    let guardd = lg_bench::flag("--guardd");
    let constraints = [0.50, 0.75];
    let mut cfgs = Vec::new();
    for constraint in constraints {
        for policy in [Policy::CorrOptOnly, Policy::LgPlusCorrOpt] {
            cfgs.push(FabricSimConfig {
                pods,
                horizon_hours: days * 24.0,
                constraint,
                policy,
                sample_interval_hours: sample_hours,
                target_loss_rate: 1e-8,
                seed,
            });
        }
    }
    if guardd {
        for constraint in constraints {
            cfgs.push(FabricSimConfig {
                pods,
                horizon_hours: days * 24.0,
                constraint,
                policy: Policy::LgGuardd(lg_guardd::GuardConfig::default()),
                sample_interval_hours: sample_hours,
                target_loss_rate: 1e-8,
                seed,
            });
        }
    }
    let all = run_many(&cfgs, sweep::threads());
    lg_bench::obs::publish_fabric_health(&cfgs, &all);
    lg_bench::obs::publish_fabric_guard(&cfgs, &all);
    for (i, constraint) in constraints.into_iter().enumerate() {
        let (co, lg) = (&all[i * 2], &all[i * 2 + 1]);
        let mut gains: Vec<f64> = co
            .samples
            .iter()
            .zip(lg.samples.iter())
            .map(|(a, b)| {
                if a.total_penalty <= 0.0 && b.total_penalty <= 0.0 {
                    1.0
                } else {
                    a.total_penalty / b.total_penalty.max(1e-300)
                }
            })
            .collect();
        gains.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let mut cap_drop: Vec<f64> = co
            .samples
            .iter()
            .zip(lg.samples.iter())
            .map(|(a, b)| (a.least_capacity - b.least_capacity).max(0.0) * 100.0)
            .collect();
        cap_drop.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let q = |v: &[f64], p: f64| v[((p * v.len() as f64) as usize).min(v.len() - 1)];

        println!("=== capacity constraint {:.0}% ===", constraint * 100.0);
        println!("(a) gain in total penalty (x times):");
        for p in [0.10, 0.25, 0.35, 0.50, 0.75, 0.90, 0.99] {
            println!("    P{:>4.0} : {:>12.3e}", p * 100.0, q(&gains, p));
        }
        let no_gain =
            gains.iter().filter(|&&g| g <= 1.0 + 1e-9).count() as f64 / gains.len() as f64;
        println!(
            "    fraction of time with no gain (all links disabled): {:.1}%",
            no_gain * 100.0
        );
        println!("(b) decrease in least capacity per pod (percentage points):");
        for p in [0.50f64, 0.90, 0.99, 1.0] {
            println!(
                "    P{:>4.0} : {:>8.4}",
                p * 100.0,
                q(&cap_drop, p.min(0.999999))
            );
        }
        println!();
    }
    if guardd {
        println!("=== lg-guardd control plane (observed health, budgeted) ===");
        for (k, constraint) in constraints.into_iter().enumerate() {
            let g = &all[4 + k];
            let mean_pen =
                g.samples.iter().map(|s| s.total_penalty).sum::<f64>() / g.samples.len() as f64;
            println!(
                "c{:.0}: mean total penalty {mean_pen:.3e}, {} journaled decisions",
                constraint * 100.0,
                g.guard_journal.len()
            );
        }
        println!();
    }
    println!("paper: at 50% the gain is 1 about 35% of the time (everything disabled);");
    println!("  otherwise, and nearly always at 75%, the gain is orders of magnitude,");
    println!("  while the capacity decrease stays below ~0.25%.");
}
