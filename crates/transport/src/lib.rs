//! `lg-transport` — transport endpoints for the LinkGuardian evaluation.
//!
//! * [`tcp_tx`]/[`tcp_rx`]: an event-driven TCP with SACK, fast recovery,
//!   tail-loss probe and a 1 ms-floored RTO, carrying one message per
//!   flow — the unit the paper's FCT experiments measure;
//! * [`cc`]: DCTCP, CUBIC and simplified-BBR congestion control — the
//!   ECN-, loss- and rate-based representatives of §4.2;
//! * [`rdma`]: RoCEv2 RC `RDMA_WRITE` with go-back-N (and the §5
//!   selective-repeat extension).
//!
//! Endpoints are pure state machines: packets and timer wakes in,
//! [`types::TransportAction`]s out. The testbed crate owns NIC
//! serialization and event scheduling.

pub mod cc;
pub mod rdma;
pub mod tcp_rx;
pub mod tcp_tx;
pub mod types;

pub use rdma::{RdmaConfig, RdmaRequester, RdmaResponder, RdmaTrace, ROCE_MTU};
pub use tcp_rx::TcpReceiver;
pub use tcp_tx::TcpSender;
pub use types::{CcVariant, FlowTrace, TcpConfig, TransportAction};
