//! UDP header (also the carrier for RoCEv2).

use crate::wire::{ParseError, Reader, Result, Writer};
use serde::{Deserialize, Serialize};

/// The IANA destination port for RoCEv2.
pub const ROCEV2_PORT: u16 = 4791;

/// UDP header representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UdpRepr {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Payload length in bytes (excluding this header).
    pub payload_len: u16,
}

impl UdpRepr {
    /// Serialized length.
    pub const LEN: usize = 8;

    /// Write into `buf` (at least 8 bytes).
    pub fn emit(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        w.u16(self.src_port);
        w.u16(self.dst_port);
        w.u16(self.payload_len + Self::LEN as u16);
        w.u16(0); // checksum elided in simulation
    }

    /// Parse from `buf`.
    pub fn parse(buf: &[u8]) -> Result<UdpRepr> {
        let mut r = Reader::new(buf);
        let src_port = r.u16()?;
        let dst_port = r.u16()?;
        let len = r.u16()?;
        if (len as usize) < Self::LEN {
            return Err(ParseError::Malformed);
        }
        let _ck = r.u16()?;
        Ok(UdpRepr {
            src_port,
            dst_port,
            payload_len: len - Self::LEN as u16,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let h = UdpRepr {
            src_port: 1234,
            dst_port: ROCEV2_PORT,
            payload_len: 999,
        };
        let mut buf = [0u8; 8];
        h.emit(&mut buf);
        assert_eq!(UdpRepr::parse(&buf).unwrap(), h);
    }

    #[test]
    fn short_length_rejected() {
        let mut buf = [0u8; 8];
        UdpRepr {
            src_port: 1,
            dst_port: 2,
            payload_len: 0,
        }
        .emit(&mut buf);
        buf[4] = 0;
        buf[5] = 4; // total length 4 < 8
        assert_eq!(UdpRepr::parse(&buf), Err(ParseError::Malformed));
    }
}
