//! Experiment drivers: one function per class of experiment in §4.

use crate::world::{App, World, WorldConfig};
use lg_link::{LinkSpeed, LossModel};
use lg_sim::{Duration, LogHistogram, Time};
use lg_transport::{CcVariant, FlowTrace};
use lg_workload::FctReport;
use linkguardian::LgConfig;
use serde::{Deserialize, Serialize};

/// Which protection runs on the corrupting link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Protection {
    /// Nothing: losses reach the transport.
    Off,
    /// Full LinkGuardian (ordered).
    Lg,
    /// LinkGuardianNB (out-of-order recovery).
    LgNb,
    /// Ablation variant (Table 2): plain link-local ReTx plus optional
    /// tail-loss detection and/or ordering.
    Ablation {
        /// Dummy-packet tail-loss detection (§3.2).
        tail: bool,
        /// Reordering buffer + backpressure (§3.3).
        order: bool,
    },
}

impl Protection {
    /// Build the LinkGuardian configuration, or `None` when off.
    pub fn lg_config(self, speed: LinkSpeed, actual_loss: f64) -> Option<LgConfig> {
        let base = LgConfig::for_speed(speed, actual_loss.max(1e-9));
        match self {
            Protection::Off => None,
            Protection::Lg => Some(base),
            Protection::LgNb => Some(base.non_blocking()),
            Protection::Ablation { tail, order } => {
                let mut c = if order { base } else { base.non_blocking() };
                c.dummy_copies = if tail { 1 } else { 0 };
                Some(c)
            }
        }
    }

    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Protection::Off => "loss",
            Protection::Lg => "LG",
            Protection::LgNb => "LG_NB",
            Protection::Ablation {
                tail: false,
                order: false,
            } => "ReTx",
            Protection::Ablation {
                tail: false,
                order: true,
            } => "ReTx+Order",
            Protection::Ablation {
                tail: true,
                order: false,
            } => "ReTx+Tail",
            Protection::Ablation {
                tail: true,
                order: true,
            } => "ReTx+Tail+Order",
        }
    }
}

/// Run `w` to `until`, profiled when the observability sink is on (the
/// wall-clock profile rides in the same JSONL dump, quarantined behind
/// the `zz-profile/` sort key).
fn run_until_obs(w: &mut World, until: Time) {
    if lg_obs::sink::metrics_enabled() {
        w.run_until_profiled(until);
    } else {
        w.run_until(until);
    }
}

/// Run `w` to completion, profiled when the observability sink is on.
fn run_to_completion_obs(w: &mut World) {
    if lg_obs::sink::metrics_enabled() {
        w.run_to_completion_profiled();
    } else {
        w.run_to_completion();
    }
}

// ------------------------------------------------------------- stress test

/// Result of a Fig 8 / Fig 14 / Table 4 stress run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StressResult {
    /// Frames injected at line rate.
    pub sent: u64,
    /// Frames delivered end-to-end.
    pub delivered: u64,
    /// Frames lost on the wire (corrupted originals + copies).
    pub wire_losses: u64,
    /// Packets LinkGuardian could not recover (timeout-skipped or never
    /// recovered) — the numerator of the measured effective loss rate.
    pub unrecovered: u64,
    /// Effective link speed as a fraction of line rate.
    pub effective_speed: f64,
    /// Measured effective loss rate (unrecovered / sent).
    pub effective_loss_rate: f64,
    /// Expected effective loss rate `actual^(N+1)` (Eq. 1).
    pub expected_loss_rate: f64,
    /// ackNoTimeout firings.
    pub timeouts: u64,
    /// Retransmission copies per lost packet in force (Eq. 2).
    pub n_copies: u32,
    /// Tx buffer high watermark (bytes).
    pub tx_buffer_peak: u64,
    /// Rx (reordering) buffer high watermark (bytes).
    pub rx_buffer_peak: u64,
    /// Sender-side recirculation overhead (fraction of a 1.5 Gpps pipe).
    pub tx_recirc_overhead: f64,
    /// Receiver-side recirculation overhead.
    pub rx_recirc_overhead: f64,
    /// Loss-detection → recovery delay histogram (ps), Fig 19.
    pub retx_delay_ps: LogHistogram,
    /// Pause frames sent by the backpressure mechanism.
    pub pauses: u64,
}

/// Tofino-class pipeline packet capacity used for the Table 4 overhead
/// percentages.
pub const PIPE_CAPACITY_PPS: f64 = 1.5e9;

/// Run the §4.1 stress test: MTU frames at line rate over a corrupting
/// link for `duration`, protected per `protection`.
pub fn stress_test(
    speed: LinkSpeed,
    loss: LossModel,
    protection: Protection,
    duration: Duration,
    seed: u64,
) -> StressResult {
    let actual = loss.mean_rate();
    let mut cfg = WorldConfig::new(speed, loss);
    cfg.lg = protection.lg_config(speed, actual);
    cfg.seed = seed;
    let mut w = World::new(cfg);
    w.enable_stress(1518);
    run_until_obs(&mut w, Time::ZERO + duration);
    // stop injecting, drain what's in flight
    w.disable_stress();
    run_until_obs(&mut w, Time::ZERO + duration + Duration::from_ms(1));
    w.publish_obs(&format!(
        "stress/{}/{:.2e}/{}/{seed}",
        speed.name(),
        actual,
        protection.label()
    ));

    let sent = w.lg_tx.stats().protected_sent.max(w.out.stress_tx_frames);
    let injected = if w.lg_tx.is_active() {
        w.lg_tx.stats().protected_sent
    } else {
        w.out.stress_tx_frames
    };
    let delivered = w.stress_delivered();
    let rx = w.lg_rx.stats();
    let unrecovered = injected.saturating_sub(delivered);
    let n_copies = w.lg_tx.n_copies();
    let elapsed = duration;
    let line_bytes = speed.rate().bytes_in(elapsed);
    let delivered_wire = w.hosts[1].stress_rx_wire_bytes;
    let _ = sent;
    StressResult {
        sent: injected,
        delivered,
        wire_losses: w.sw_rx.counters(crate::world::PORT_LINK).frames_rx_all
            - w.sw_rx.counters(crate::world::PORT_LINK).frames_rx_ok,
        unrecovered,
        effective_speed: delivered_wire as f64 / line_bytes as f64,
        effective_loss_rate: if injected == 0 {
            0.0
        } else {
            unrecovered as f64 / injected as f64
        },
        expected_loss_rate: if w.lg_tx.is_active() {
            linkguardian::effective_loss_rate(actual.max(1e-12), n_copies)
        } else {
            actual
        },
        timeouts: rx.timeouts,
        n_copies,
        tx_buffer_peak: w.lg_tx.tx_buffer_stats().high_watermark,
        rx_buffer_peak: w.lg_rx.rx_buffer_stats().high_watermark,
        tx_recirc_overhead: w.lg_tx.tx_buffer_stats().loops as f64
            / elapsed.as_secs_f64()
            / PIPE_CAPACITY_PPS,
        rx_recirc_overhead: w.lg_rx.rx_buffer_stats().loops as f64
            / elapsed.as_secs_f64()
            / PIPE_CAPACITY_PPS,
        retx_delay_ps: w.lg_rx.retx_delay_histogram().clone(),
        pauses: w.lg_rx.stats().pauses_sent,
    }
}

// ----------------------------------------------------------------- FCT

/// Transport under test in an FCT experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FctTransport {
    /// TCP with the given congestion control.
    Tcp(CcVariant),
    /// RDMA WRITE over RC (go-back-N).
    Rdma,
    /// RDMA WRITE with selective repeat (§5).
    RdmaSelectiveRepeat,
}

/// Result of an FCT experiment.
#[derive(Debug, Clone)]
pub struct FctResult {
    /// Percentile report.
    pub report: FctReport,
    /// Top-tail CDF points (µs, cum-prob).
    pub tail_cdf: Vec<(f64, f64)>,
    /// Per-flow TCP traces (empty for RDMA).
    pub traces: Vec<FlowTrace>,
    /// Transport-level retransmissions across all trials.
    pub e2e_retx: u64,
    /// LinkGuardian receiver timeouts across all trials.
    pub lg_timeouts: u64,
}

/// Run serial fixed-size message trials (Figs 10–12, Table 2).
pub fn fct_experiment(
    speed: LinkSpeed,
    loss: LossModel,
    protection: Protection,
    transport: FctTransport,
    msg_len: u32,
    trials: u32,
    seed: u64,
) -> FctResult {
    let actual = loss.mean_rate();
    let mut cfg = WorldConfig::new(speed, loss);
    cfg.lg = protection.lg_config(speed, actual);
    cfg.seed = seed;
    cfg.app = match transport {
        FctTransport::Tcp(variant) => App::TcpTrials {
            variant,
            msg_len,
            trials,
            gap: Duration::from_us(10),
        },
        FctTransport::Rdma => App::RdmaTrials {
            msg_len,
            trials,
            gap: Duration::from_us(10),
            selective_repeat: false,
        },
        FctTransport::RdmaSelectiveRepeat => App::RdmaTrials {
            msg_len,
            trials,
            gap: Duration::from_us(10),
            selective_repeat: true,
        },
    };
    let mut w = World::new(cfg);
    run_to_completion_obs(&mut w);
    w.publish_obs(&format!(
        "fct/{}/{:.2e}/{}/{transport:?}/{msg_len}/{trials}/{seed}",
        speed.name(),
        actual,
        protection.label()
    ));
    assert_eq!(
        w.out.fct.len() as u32,
        trials,
        "every trial must complete ({}/{trials})",
        w.out.fct.len()
    );
    let mut fct = std::mem::take(&mut w.out.fct);
    FctResult {
        report: fct.report(),
        tail_cdf: fct.tail_cdf(0.05),
        traces: w.out.tcp_traces.clone(),
        e2e_retx: w.out.e2e_retx_total
            + w.out
                .rdma_traces
                .iter()
                .map(|t| t.e2e_retx as u64)
                .sum::<u64>(),
        lg_timeouts: w.lg_rx.stats().timeouts,
    }
}

// --------------------------------------------------------- time series

/// Scenario timeline of the Fig 9/21 experiments: a long TCP stream, a
/// corruption onset partway through, LinkGuardian activation later.
#[derive(Debug, Clone)]
pub struct TimeSeriesScenario {
    /// Link speed.
    pub speed: LinkSpeed,
    /// Congestion control under test.
    pub variant: CcVariant,
    /// Corruption model engaged at `corruption_at`.
    pub loss: LossModel,
    /// When the VOA is engaged.
    pub corruption_at: Time,
    /// When LinkGuardian is activated.
    pub lg_at: Time,
    /// Total duration.
    pub end: Time,
    /// Disable the backpressure mechanism (Fig 9b).
    pub disable_backpressure: bool,
    /// Run LinkGuardian in non-blocking (out-of-order) mode.
    pub nb_mode: bool,
    /// Probe interval.
    pub sample_interval: Duration,
    /// Seed.
    pub seed: u64,
}

/// Result: probe series.
#[derive(Debug)]
pub struct TimeSeriesResult {
    /// Throughput at host1 (Gb/s per window).
    pub goodput: lg_sim::TimeSeries,
    /// Sender-switch protected-port queue depth (bytes).
    pub qdepth: lg_sim::TimeSeries,
    /// LinkGuardian Rx (reordering) buffer depth (bytes).
    pub rx_buffer: lg_sim::TimeSeries,
    /// End-to-end retransmissions per window.
    pub e2e_retx: lg_sim::TimeSeries,
    /// Rx-buffer overflow drops (Fig 9b's packet losses).
    pub rx_overflow_drops: u64,
}

/// Run the Fig 9 / Fig 21 scenario.
pub fn time_series(s: &TimeSeriesScenario) -> TimeSeriesResult {
    let mut cfg = WorldConfig::new(s.speed, LossModel::None);
    let actual = s.loss.mean_rate();
    let mut lg = LgConfig::for_speed(s.speed, actual.max(1e-9));
    if s.nb_mode {
        lg = lg.non_blocking();
    }
    if s.disable_backpressure {
        lg.pause_threshold = u64::MAX;
        lg.resume_threshold = 0;
    }
    cfg.lg = Some(lg);
    cfg.lg_active_from_start = false;
    cfg.ecn_threshold = Some(100 * 1024); // paper: 100 KB DCTCP marking
    cfg.sample_interval = Some(s.sample_interval);
    cfg.seed = s.seed;
    cfg.app = App::TcpStream {
        variant: s.variant,
        chunk: 64 * 1024 * 1024,
        end: s.end,
    };
    let mut w = World::new(cfg);
    w.q.schedule_at(
        s.corruption_at,
        crate::world::Ev::SetLoss(Box::new(s.loss.clone())),
    );
    w.q.schedule_at(s.lg_at, crate::world::Ev::ActivateLg);
    run_until_obs(&mut w, s.end);
    w.publish_obs(&format!(
        "ts/{}/{:?}/{:.2e}/nb={}/bp={}/{}",
        s.speed.name(),
        s.variant,
        actual,
        s.nb_mode,
        !s.disable_backpressure,
        s.seed
    ));
    TimeSeriesResult {
        goodput: w
            .probes
            .goodput
            .as_ref()
            .map(|m| m.series().clone())
            .unwrap_or_default(),
        qdepth: w.probes.qdepth.clone(),
        rx_buffer: w.probes.rx_buffer.clone(),
        e2e_retx: w.probes.e2e_retx.clone(),
        rx_overflow_drops: w.lg_rx.stats().rx_overflow_drops,
    }
}

// -------------------------------------------------- Fig 13 classification

/// The four groups of Fig 13.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Fig13Group {
    /// ≤ 2 MSS SACK'd, not a tail loss: no cwnd reduction.
    A,
    /// ≤ 2 MSS SACK'd, tail loss.
    B,
    /// > 2 MSS SACK'd but nothing left to send: reduction without FCT harm.
    C,
    /// > 2 MSS SACK'd with bytes pending: the only group with FCT impact.
    D,
}

/// Classify the *affected* flows (those that saw any SACK while recovery
/// happened) into the paper's groups A–D.
pub fn classify_fig13(traces: &[FlowTrace], mss: u32) -> Vec<(Fig13Group, usize)> {
    use std::collections::HashMap;
    let mut counts: HashMap<Fig13Group, usize> = HashMap::new();
    for t in traces {
        if t.max_sacked_bytes == 0 {
            continue; // unaffected
        }
        let group = if t.max_sacked_bytes <= 2 * mss {
            if t.tail_loss {
                Fig13Group::B
            } else {
                Fig13Group::A
            }
        } else if t.pending_bytes_at_big_sack == 0 || t.pending_bytes_at_big_sack == u32::MAX {
            Fig13Group::C
        } else {
            Fig13Group::D
        };
        *counts.entry(group).or_insert(0) += 1;
    }
    let mut v: Vec<_> = counts.into_iter().collect();
    v.sort_by_key(|(g, _)| format!("{g:?}"));
    v
}
