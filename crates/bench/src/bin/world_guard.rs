//! Event-loop throughput guard for CI.
//!
//! Runs the same fig10-style FCT world as `benches/world.rs` several
//! times and prints the median `events_per_sec`. CI runs this binary
//! twice — default features vs `--no-default-features` (trace emission
//! compiled out) — and fails if the default build falls below 97% of the
//! trace-free build, i.e. if the disabled-path trace checks ever grow
//! beyond a branch. A second gate runs `--ab-telemetry`, which
//! interleaves baseline reps with `--telemetry` reps (500 µs streaming
//! sampling) inside one process and prints both medians plus their
//! ratio — interleaving cancels the machine drift that makes two
//! sequential invocations useless for resolving a few percent. CI fails
//! if the ratio shows telemetry costing more than 5% of throughput.
//! (`tick_cost` prints the per-tick nanosecond cost directly when the
//! ratio needs explaining.)
//!
//! Usage: `cargo run --release -p lg-bench --bin world_guard
//! [--trials 300] [--reps 5] [--telemetry | --ab-telemetry]`

use lg_bench::arg;
use lg_link::{LinkSpeed, LossModel};
use lg_sim::Duration;
use lg_testbed::{App, World, WorldConfig};
use lg_transport::CcVariant;
use linkguardian::LgConfig;

fn fig10_world(trials: u32, telemetry: bool) -> World {
    let speed = LinkSpeed::G100;
    let loss = LossModel::Iid { rate: 1e-3 };
    let mut cfg = WorldConfig::new(speed, loss);
    cfg.lg = Some(LgConfig::for_speed(speed, 1e-3));
    cfg.seed = 10;
    cfg.app = App::TcpTrials {
        variant: CcVariant::Dctcp,
        msg_len: 143,
        trials,
        gap: Duration::from_us(10),
    };
    if telemetry {
        // 4x finer than the finest interval any experiment binary
        // actually uses (table3_wharf samples at 2 ms), so the gate
        // binds with margin without turning into a microbenchmark of
        // tick frequency: this world is sparse (~0.7 events/us of sim
        // time), so an unrealistically fine interval would measure how
        // often the sampler runs, not what sampling costs.
        cfg.sample_interval = Some(Duration::from_us(500));
    }
    World::new(cfg)
}

fn run_counting(w: &mut World, trials: u32) -> u64 {
    let mut events = 0u64;
    // Stop at the last FCT, not on queue exhaustion: with `--telemetry`
    // the periodic Ev::Sample reschedules itself forever.
    while w.out.fct.len() as u32 != trials {
        let (now, ev) = w.q.pop().expect("trials still in flight");
        w.handle_pub(ev, now);
        events += 1;
    }
    events
}

/// One timed run; returns events per wall-clock second.
fn timed_rate(trials: u32, telemetry: bool) -> f64 {
    let mut w = fig10_world(trials, telemetry);
    let t0 = std::time::Instant::now();
    let events = run_counting(&mut w, trials);
    events as f64 / t0.elapsed().as_secs_f64()
}

fn median(rates: &mut [f64]) -> f64 {
    rates.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    rates[rates.len() / 2]
}

fn main() {
    let trials: u32 = arg("--trials", 300);
    let reps: usize = arg("--reps", 5).max(1);
    // `--telemetry` turns on 100 µs sampling: the streaming bank, the
    // health estimator, and the probes all run per tick. The sink (full
    // registry snapshots + end-of-run dump) stays off — that is the
    // `--metrics-out` path, not the steady-state telemetry cost this
    // gate guards.
    let telemetry = lg_bench::flag("--telemetry");
    if lg_bench::flag("--ab-telemetry") {
        // Interleaved A/B: baseline rep, telemetry rep, repeat. Both
        // sides see the same slice of machine noise, so the *ratio* is
        // trustworthy even when absolute rates drift between reps. The
        // pair order flips every rep so monotone drift (thermal ramp,
        // background load building up) cancels instead of always
        // penalizing whichever side runs second.
        run_counting(&mut fig10_world(trials, true), trials); // warm-up
        let (mut base, mut tele, mut ratios) = (Vec::new(), Vec::new(), Vec::new());
        for i in 0..reps {
            let (b, t) = if i % 2 == 0 {
                let b = timed_rate(trials, false);
                (b, timed_rate(trials, true))
            } else {
                let t = timed_rate(trials, true);
                (timed_rate(trials, false), t)
            };
            base.push(b);
            tele.push(t);
            // Per-pair ratio: the two runs of a pair are adjacent in
            // time, so they see nearly the same machine state and their
            // ratio is far tighter than the ratio of the two medians.
            ratios.push(t / b);
        }
        let (b, t) = (median(&mut base), median(&mut tele));
        println!("events_per_sec_baseline: {b:.0}");
        println!("events_per_sec_telemetry: {t:.0}");
        println!("telemetry_ratio: {:.4}", median(&mut ratios));
        return;
    }
    // Warm-up run (also calibrates the per-run event count).
    let events_per_run = run_counting(&mut fig10_world(trials, telemetry), trials);
    let mut rates: Vec<f64> = (0..reps).map(|_| timed_rate(trials, telemetry)).collect();
    let median = median(&mut rates);
    println!("events_per_run: {events_per_run}");
    println!("events_per_sec: {median:.0}");
}
