//! `guardctl` — interrogate a guardian decision journal.
//!
//! ```text
//! guardctl <journal.jsonl> status   [--run <label>]
//! guardctl <journal.jsonl> timeline [--run <label>]
//! guardctl <journal.jsonl> history <link> [--run <label>]
//! guardctl <journal.jsonl> why <link> [--run <label>]
//! ```
//!
//! The journal is the `guard_event` JSONL stream a [`lg_guardd`]
//! manager emits (a whole session dump works too — foreign record
//! types are skipped). `status` folds it to the current protected set
//! and budget pressure; `timeline` lists every decision; `history`
//! narrows to one link; `why` is the decision postmortem — the health
//! transitions that triggered the latest decision about the link and
//! the candidate scores it was ranked against. A file holding several
//! runs' journals (e.g. `fig15_fabric_week --guardd --guard-log`)
//! folds them together unless `--run` narrows to one label.

use lg_guardd::query;
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage: guardctl <journal.jsonl> <status|timeline|history <link>|why <link>> \
         [--run <label>]"
    );
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    let run = args.iter().position(|a| a == "--run").map(|i| {
        if i + 1 >= args.len() {
            eprintln!("--run needs a label");
            std::process::exit(2);
        }
        let label = args.remove(i + 1);
        args.remove(i);
        label
    });
    let (Some(path), Some(cmd)) = (args.first(), args.get(1)) else {
        return usage();
    };
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read {path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    // `--run` narrows a multi-run file before parsing: guard lines are
    // tagged with their run label, so a plain substring match on the
    // serialized field is exact.
    let text = match run {
        Some(label) => {
            let tag = {
                let mut quoted = String::new();
                lg_obs::json::write_escaped(&mut quoted, &label);
                format!("\"run\":{quoted}")
            };
            text.lines()
                .filter(|l| l.contains(&tag))
                .collect::<Vec<_>>()
                .join("\n")
        }
        None => text,
    };
    let journal = match query::parse_journal(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("{path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let link = || -> Option<u32> { args.get(2).and_then(|s| s.parse().ok()) };
    let report = match (cmd.as_str(), link()) {
        ("status", _) => query::render_status(&journal),
        ("timeline", _) => query::render_timeline(&journal),
        ("history", Some(l)) => query::render_history(&journal, l),
        ("why", Some(l)) => query::render_why(&journal, l),
        _ => return usage(),
    };
    print!("{report}");
    ExitCode::SUCCESS
}
