//! The control-plane loop (Appendix C): `corruptd` polls port counters,
//! detects corruption, publishes on the bus, and LinkGuardian activates.

use lg_link::{LinkSpeed, LossModel};
use lg_sim::{Duration, Time};
use lg_testbed::world::{Ev, World, WorldConfig};
use linkguardian::corruptd::{Corruptd, CorruptionBus};

#[test]
fn corruptd_detects_and_activates_linkguardian() {
    // LinkGuardian configured but dormant; corruption present from t=0.
    let mut cfg = WorldConfig::new(LinkSpeed::G25, LossModel::Iid { rate: 1e-3 });
    cfg.lg_active_from_start = false;
    let mut w = World::new(cfg);
    w.enable_stress(1518);

    let mut daemon = Corruptd::new(101, 1, 1e-8);
    let mut bus = CorruptionBus::new();

    // control-plane polling loop at 1-second-equivalent granularity
    // (compressed: poll every 5 ms of sim time)
    let mut polls = 0;
    let mut activated_at = None;
    for k in 1..=10u64 {
        let t = Time::ZERO + Duration::from_ms(5 * k);
        w.run_until(t);
        polls += 1;
        let counters = w.sw_rx.counters(lg_testbed::world::PORT_LINK);
        if let Some(notice) = daemon.poll(0, counters, t) {
            assert!(notice.loss_rate > 1e-4, "measured {:e}", notice.loss_rate);
            assert_eq!(notice.retx_copies, 2, "Eq. 2 at ~1e-3 toward 1e-8");
            bus.publish(notice);
        }
        // the sender switch's daemon subscribes and activates
        for notice in bus.drain(100) {
            w.q.schedule_at(w.q.now(), Ev::ActivateLg);
            activated_at = Some((w.q.now(), notice));
        }
        if activated_at.is_some() {
            break;
        }
    }
    let (t_active, _) = activated_at.expect("corruptd must trigger activation");
    assert!(polls <= 2, "detection within the first polls (got {polls})");

    // before activation: losses leaked end-to-end
    let leaked_before = w.out.stress_tx_frames - w.stress_delivered();
    assert!(leaked_before > 0, "losses leaked while dormant");

    // after activation settles: zero further end-to-end loss
    w.run_until(t_active + Duration::from_ms(1));
    let sent0 = w.out.stress_tx_frames;
    let delivered0 = w.stress_delivered();
    w.run_until(t_active + Duration::from_ms(21));
    w.disable_stress();
    w.run_until(t_active + Duration::from_ms(23));
    let sent_delta = w.out.stress_tx_frames - sent0;
    let delivered_delta = w.stress_delivered() - delivered0;
    assert!(sent_delta > 10_000, "meaningful traffic after activation");
    // in-flight packets straddle the snapshot boundary; what matters is
    // that nothing is lost anymore
    assert_eq!(
        sent_delta.saturating_sub(delivered_delta),
        0,
        "protection must stop the bleeding ({sent_delta} sent, {delivered_delta} delivered)"
    );
    assert!(w.lg_tx.is_active());
    assert!(w.lg_rx.stats().recovered > 0, "recoveries happened");
}

#[test]
fn corruptd_activation_mode_closes_the_loop_from_observed_counters() {
    // No manual polling here: the world's own corruptd polls the metrics
    // registry on every Ev::Sample tick and activates LinkGuardian from
    // the windowed rate it measured.
    let mut cfg = WorldConfig::new(LinkSpeed::G25, LossModel::Iid { rate: 1e-3 });
    cfg.lg_active_from_start = false;
    cfg.corruptd_activation = true;
    cfg.sample_interval = Some(Duration::from_ms(5));
    let mut w = World::new(cfg);
    w.enable_stress(1518);

    w.run_until(Time::ZERO + Duration::from_ms(30));
    assert!(
        w.lg_tx.is_active(),
        "sampled counters must have driven activation"
    );
    let d = w.corruptd.as_ref().expect("daemon attached");
    assert!(d.is_active(0));
    assert!(
        d.observed_rate(0) > 1e-4,
        "activation used the observed rate, got {:e}",
        d.observed_rate(0)
    );
    // The health plane saw the same thing: the link left Healthy.
    assert!(
        !w.obs.health_events.is_empty(),
        "health transition recorded"
    );
    assert!(w.obs.health_events[0].to >= lg_obs::LinkHealth::Degraded);

    // And the protection actually works: recoveries happen downstream.
    w.run_until(Time::ZERO + Duration::from_ms(50));
    w.disable_stress();
    w.run_until(Time::ZERO + Duration::from_ms(55));
    assert!(w.lg_rx.stats().recovered > 0, "recoveries happened");
}

#[test]
fn guardd_oracle_matches_corruptd_activation_tick_for_tick() {
    // The guardian plane must be purely observational-plus-actuation:
    // with budget ∞ and hold-down 0 (the `corruptd` latch), a world
    // driven by `lg-guardd` and a world driven by `corruptd` feed the
    // same estimator config the same counters at the same ticks, so
    // LinkGuardian activates at the identical sample tick and the two
    // trajectories are indistinguishable end to end.
    let base = || {
        let mut cfg = WorldConfig::new(LinkSpeed::G25, LossModel::Iid { rate: 1e-3 });
        cfg.lg_active_from_start = false;
        cfg.sample_interval = Some(Duration::from_ms(5));
        cfg
    };
    let mut a_cfg = base();
    a_cfg.corruptd_activation = true;
    let mut b_cfg = base();
    b_cfg.guardd = Some(lg_guardd::GuardConfig::oracle());
    let mut a = World::new(a_cfg);
    a.enable_stress(1518);
    let mut b = World::new(b_cfg);
    b.enable_stress(1518);
    let end = Time::ZERO + Duration::from_ms(50);
    a.run_until(end);
    b.run_until(end);
    assert!(a.lg_tx.is_active(), "corruptd world activated");
    assert!(b.lg_tx.is_active(), "guardd world activated");
    assert_eq!(a.out.stress_tx_frames, b.out.stress_tx_frames);
    assert_eq!(a.stress_delivered(), b.stress_delivered());
    assert_eq!(a.lg_rx.stats().recovered, b.lg_rx.stats().recovered);
    assert_eq!(a.lg_rx.stats().lost_reported, b.lg_rx.stats().lost_reported);

    // The guardian journaled exactly one enable, with its cause chain.
    let mgr = b.guardd.as_mut().expect("manager attached");
    assert_eq!(mgr.protected_links(), vec![0]);
    let journal = mgr.take_journal().join("\n");
    let j = lg_guardd::query::parse_journal(&journal).expect("valid journal");
    let enables: Vec<_> = j
        .events
        .iter()
        .filter(|e| e.action == lg_guardd::GuardAction::Enable)
        .collect();
    assert_eq!(enables.len(), 1, "oracle config latches exactly once");
    assert!(!enables[0].cause.is_empty(), "cause chain recorded");
    // Activation used the same observed rate corruptd latched on.
    let d = a.corruptd.as_ref().expect("daemon attached");
    let diff = (enables[0].rate - d.observed_rate(0)).abs();
    assert!(
        diff <= f64::EPSILON * d.observed_rate(0),
        "rates diverge: {:e} vs {:e}",
        enables[0].rate,
        d.observed_rate(0)
    );
}

#[test]
fn corruptd_stays_quiet_on_healthy_link() {
    let mut cfg = WorldConfig::new(LinkSpeed::G25, LossModel::None);
    cfg.lg_active_from_start = false;
    let mut w = World::new(cfg);
    w.enable_stress(1518);
    let mut daemon = Corruptd::new(101, 1, 1e-8);
    for k in 1..=5u64 {
        let t = Time::ZERO + Duration::from_ms(5 * k);
        w.run_until(t);
        let counters = w.sw_rx.counters(lg_testbed::world::PORT_LINK);
        assert!(daemon.poll(0, counters, t).is_none(), "no false activation");
    }
    assert!(!daemon.is_active(0));
}
