//! Integration tests for the guardian control plane over the analytic
//! fabric: thread-count invariance of the decision journal, restart
//! persistence on a realistic health stream, and the `guardctl` query
//! surface against a real run's journal.

use lg_fabric::sim::{run, run_many, FabricSimConfig, Policy};
use lg_guardd::{query, GuardAction, GuardConfig, GuardInput, GuardManager};

fn guardd_cfg(seed: u64) -> FabricSimConfig {
    FabricSimConfig {
        pods: 10,
        horizon_hours: 24.0 * 30.0,
        constraint: 0.75,
        policy: Policy::LgGuardd(GuardConfig {
            budget: 3,
            hold_down_windows: 2,
            ..GuardConfig::default()
        }),
        sample_interval_hours: 6.0,
        target_loss_rate: 1e-8,
        seed,
    }
}

#[test]
fn journal_is_byte_identical_across_thread_counts() {
    let cfgs: Vec<FabricSimConfig> = (0..4).map(|i| guardd_cfg(40 + i)).collect();
    let serial = run_many(&cfgs, 1);
    assert!(serial.iter().any(|r| !r.guard_journal.is_empty()));
    for threads in [2, 4] {
        let parallel = run_many(&cfgs, threads);
        for (a, b) in serial.iter().zip(&parallel) {
            assert_eq!(a.guard_journal, b.guard_journal, "threads={threads}");
        }
    }
}

#[test]
fn restart_from_snapshot_converges_on_a_realistic_stream() {
    // Use the health transitions of a real fabric run as the feed: kill
    // the manager at several points, restore from its snapshot, finish
    // the stream, and require the same final protected set and the same
    // stitched journal as the uninterrupted manager.
    let r = run(&guardd_cfg(77));
    let events: Vec<GuardInput> = r
        .health_events
        .iter()
        .map(|e| GuardInput {
            t_ps: (e.t_hours * 1e12) as u64,
            window_id: e.window_id,
            link: e.link,
            from: e.from,
            to: e.to,
            rate: e.rate,
        })
        .collect();
    assert!(events.len() > 20, "need a non-trivial stream");
    let cfg = GuardConfig {
        budget: 3,
        hold_down_windows: 2,
        ..GuardConfig::default()
    };
    let full = GuardManager::replay("restart", cfg, &events);
    for cut in [events.len() / 4, events.len() / 2, events.len() - 1] {
        let mut first = GuardManager::new("restart", cfg);
        for ev in &events[..cut] {
            first.ingest(*ev);
        }
        let mut journal = first.take_journal();
        let snap = first.snapshot_line();
        let mut resumed = GuardManager::restore(&snap).expect("snapshot restores");
        for ev in &events[cut..] {
            resumed.ingest(*ev);
        }
        journal.extend(resumed.take_journal());
        assert_eq!(journal, full.journal(), "cut at {cut}");
        assert_eq!(resumed.protected_links(), full.protected_links());
        assert_eq!(resumed.budget_used(), full.budget_used());
    }
}

#[test]
fn guardctl_queries_answer_on_a_real_journal() {
    let r = run(&guardd_cfg(7));
    let text = r.guard_journal.join("\n");
    let j = query::parse_journal(&text).expect("journal is valid");
    assert!(!j.events.is_empty());
    assert_eq!(j.run, "c75/LgGuardd");
    // status folds to a protected set bounded by the budget
    assert!(j.protected().len() <= 3);
    let status = query::render_status(&j);
    assert!(status.contains("decisions"), "{status}");
    // `why` on an enabled link reconstructs the full cause chain
    let enabled = j
        .events
        .iter()
        .find(|e| e.action == GuardAction::Enable)
        .expect("some link was enabled");
    assert!(
        !enabled.cause.is_empty(),
        "enable decisions must carry their cause chain"
    );
    let why = query::render_why(&j, enabled.link);
    assert!(why.contains("cause chain"), "{why}");
    assert!(why.contains("->"), "{why}");
    // timeline lists every decision
    let timeline = query::render_timeline(&j);
    assert_eq!(timeline.lines().count(), j.events.len());
}
