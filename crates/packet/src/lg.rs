//! LinkGuardian wire formats (§3.5, Appendix A).
//!
//! The sender switch adds a **3-byte data header** to every protected
//! packet: a 16-bit sequence number plus metadata (era bit, packet type).
//! The receiver switch adds a similar **3-byte ACK header** to piggyback
//! the cumulative ACK (`latestRxSeqNo`) on reverse-direction traffic.
//! Dedicated control packets carry loss notifications, explicit ACKs and
//! pause/resume backpressure.

use crate::seqno::SeqNo;
use crate::wire::{ParseError, Reader, Result, Writer};
use serde::{Deserialize, Serialize};

/// Size of the LinkGuardian data header added to protected packets.
pub const DATA_HEADER_LEN: u32 = 3;
/// Size of the LinkGuardian ACK header piggybacked on reverse traffic.
pub const ACK_HEADER_LEN: u32 = 3;
/// Frame length of a minimum-sized explicit control packet (dummy /
/// explicit ACK / loss notification): a minimum Ethernet frame.
pub const CONTROL_FRAME_LEN: u32 = crate::eth::MIN_FRAME_LEN;

/// Type of a protected packet, carried in the data header.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum LgPacketType {
    /// First transmission of a protected packet.
    Original = 0,
    /// A retransmitted copy (one of the N copies of Eq. 2).
    Retransmit = 1,
    /// A self-replenishing dummy packet used for tail-loss detection (§3.2).
    Dummy = 2,
}

impl LgPacketType {
    fn from_bits(v: u8) -> Result<LgPacketType> {
        match v {
            0 => Ok(LgPacketType::Original),
            1 => Ok(LgPacketType::Retransmit),
            2 => Ok(LgPacketType::Dummy),
            _ => Err(ParseError::Malformed),
        }
    }
}

/// The 3-byte LinkGuardian data header: 16-bit seqNo, era bit, packet type.
///
/// A dummy packet carries the sequence number of the *last transmitted*
/// protected packet so the receiver can detect a tail loss from the gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LgData {
    /// Sequence number (with era) of this packet (or, for a dummy, of the
    /// last protected packet sent before it).
    pub seq: SeqNo,
    /// Original, retransmitted copy, or dummy.
    pub kind: LgPacketType,
}

impl LgData {
    /// Serialized length.
    pub const LEN: usize = DATA_HEADER_LEN as usize;

    /// Write into `buf` (at least 3 bytes).
    pub fn emit(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        w.u16(self.seq.raw());
        w.u8(((self.seq.era() as u8) << 7) | ((self.kind as u8) << 5));
    }

    /// Parse from `buf`.
    pub fn parse(buf: &[u8]) -> Result<LgData> {
        let mut r = Reader::new(buf);
        let raw = r.u16()?;
        let meta = r.u8()?;
        if meta & 0x1F != 0 {
            return Err(ParseError::Malformed); // reserved bits must be zero
        }
        Ok(LgData {
            seq: SeqNo::new(raw, meta & 0x80 != 0),
            kind: LgPacketType::from_bits((meta >> 5) & 0x3)?,
        })
    }
}

/// The 3-byte LinkGuardian ACK header: cumulative `latestRxSeqNo` + era.
///
/// Piggybacked on reverse-direction traffic, or carried by a minimum-sized
/// explicit ACK packet from the self-replenishing ACK queue (§3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LgAck {
    /// Highest in-order-received protected sequence number.
    pub latest_rx: SeqNo,
    /// True when carried by a dedicated (explicit) ACK packet rather than
    /// piggybacked on a normal packet.
    pub explicit: bool,
}

impl LgAck {
    /// Serialized length.
    pub const LEN: usize = ACK_HEADER_LEN as usize;

    /// Write into `buf` (at least 3 bytes).
    pub fn emit(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        w.u16(self.latest_rx.raw());
        w.u8(((self.latest_rx.era() as u8) << 7) | ((self.explicit as u8) << 6));
    }

    /// Parse from `buf`.
    pub fn parse(buf: &[u8]) -> Result<LgAck> {
        let mut r = Reader::new(buf);
        let raw = r.u16()?;
        let meta = r.u8()?;
        if meta & 0x3F != 0 {
            return Err(ParseError::Malformed);
        }
        Ok(LgAck {
            latest_rx: SeqNo::new(raw, meta & 0x80 != 0),
            explicit: meta & 0x40 != 0,
        })
    }
}

/// Maximum number of consecutive losses one notification can report.
///
/// §3.5: the implementation provisions 5 one-bit `reTxReqs` registers,
/// which covers 99.9999% of loss events even at a 5% loss rate (Fig 20).
pub const MAX_CONSECUTIVE_LOSSES: u16 = 5;

/// A loss notification (Appendix A.1), sent receiver → sender through a
/// high-priority queue when a gap in sequence numbers is observed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LossNotification {
    /// First missing sequence number.
    pub first_lost: SeqNo,
    /// Number of consecutive missing packets (1..=[`MAX_CONSECUTIVE_LOSSES`]).
    pub count: u16,
    /// The receiver's `latestRxSeqNo` at notification time, so the sender
    /// can also free acknowledged buffer entries.
    pub latest_rx: SeqNo,
}

impl LossNotification {
    /// Serialized length: first_lost(2) meta(1) count(2) latest_rx(2) meta(1).
    pub const LEN: usize = 8;

    /// Write into `buf` (at least [`Self::LEN`] bytes).
    pub fn emit(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        w.u16(self.first_lost.raw());
        w.u8((self.first_lost.era() as u8) << 7);
        w.u16(self.count);
        w.u16(self.latest_rx.raw());
        w.u8((self.latest_rx.era() as u8) << 7);
    }

    /// Parse from `buf`.
    pub fn parse(buf: &[u8]) -> Result<LossNotification> {
        let mut r = Reader::new(buf);
        let fl_raw = r.u16()?;
        let fl_meta = r.u8()?;
        let count = r.u16()?;
        let lr_raw = r.u16()?;
        let lr_meta = r.u8()?;
        if fl_meta & 0x7F != 0 || lr_meta & 0x7F != 0 {
            return Err(ParseError::Malformed);
        }
        if count == 0 || count > MAX_CONSECUTIVE_LOSSES {
            return Err(ParseError::Malformed);
        }
        Ok(LossNotification {
            first_lost: SeqNo::new(fl_raw, fl_meta & 0x80 != 0),
            count,
            latest_rx: SeqNo::new(lr_raw, lr_meta & 0x80 != 0),
        })
    }
}

/// A PFC-style pause/resume frame used by the backpressure mechanism
/// (§3.3/§3.5). The receiver switch generates these; the RX MAC of the
/// corrupting link on the sender switch absorbs them and pauses/resumes the
/// normal packet queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PauseFrame {
    /// True to pause the normal packet queue, false to resume it.
    pub pause: bool,
    /// Priority class the pause applies to (the normal packet queue's
    /// class; retransmissions ride a higher class and are never paused).
    pub class: u8,
}

impl PauseFrame {
    /// Serialized length: opcode(2) class-enable(2) per-class quanta (2).
    pub const LEN: usize = 6;

    /// Write into `buf`.
    pub fn emit(&self, buf: &mut [u8]) {
        let mut w = Writer::new(buf);
        w.u16(0x0101); // PFC opcode
        w.u16(1 << self.class);
        // Pause quanta: 0xFFFF = pause until further notice, 0 = resume.
        w.u16(if self.pause { 0xFFFF } else { 0 });
    }

    /// Parse from `buf`.
    pub fn parse(buf: &[u8]) -> Result<PauseFrame> {
        let mut r = Reader::new(buf);
        if r.u16()? != 0x0101 {
            return Err(ParseError::Malformed);
        }
        let enable = r.u16()?;
        if enable.count_ones() != 1 {
            return Err(ParseError::Malformed);
        }
        let quanta = r.u16()?;
        Ok(PauseFrame {
            pause: quanta != 0,
            class: enable.trailing_zeros() as u8,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_header_round_trip() {
        for kind in [
            LgPacketType::Original,
            LgPacketType::Retransmit,
            LgPacketType::Dummy,
        ] {
            for (raw, era) in [(0u16, false), (65_535, true), (777, true)] {
                let h = LgData {
                    seq: SeqNo::new(raw, era),
                    kind,
                };
                let mut buf = [0u8; 3];
                h.emit(&mut buf);
                assert_eq!(LgData::parse(&buf).unwrap(), h);
            }
        }
    }

    #[test]
    fn data_header_is_three_bytes() {
        // §3.5: "a 3-byte LinkGuardian data header"
        assert_eq!(LgData::LEN, 3);
        assert_eq!(LgAck::LEN, 3);
    }

    #[test]
    fn data_header_reserved_bits_checked() {
        let mut buf = [0u8; 3];
        LgData {
            seq: SeqNo::ZERO,
            kind: LgPacketType::Original,
        }
        .emit(&mut buf);
        buf[2] |= 0x01;
        assert_eq!(LgData::parse(&buf), Err(ParseError::Malformed));
    }

    #[test]
    fn ack_header_round_trip() {
        for explicit in [false, true] {
            let h = LgAck {
                latest_rx: SeqNo::new(4_242, true),
                explicit,
            };
            let mut buf = [0u8; 3];
            h.emit(&mut buf);
            assert_eq!(LgAck::parse(&buf).unwrap(), h);
        }
    }

    #[test]
    fn loss_notification_round_trip() {
        let n = LossNotification {
            first_lost: SeqNo::new(100, false),
            count: 3,
            latest_rx: SeqNo::new(104, false),
        };
        let mut buf = [0u8; LossNotification::LEN];
        n.emit(&mut buf);
        assert_eq!(LossNotification::parse(&buf).unwrap(), n);
    }

    #[test]
    fn loss_notification_count_bounds() {
        let mut buf = [0u8; LossNotification::LEN];
        let mut n = LossNotification {
            first_lost: SeqNo::ZERO,
            count: 0,
            latest_rx: SeqNo::ZERO,
        };
        n.emit(&mut buf);
        assert_eq!(LossNotification::parse(&buf), Err(ParseError::Malformed));
        n.count = MAX_CONSECUTIVE_LOSSES + 1;
        n.emit(&mut buf);
        assert_eq!(LossNotification::parse(&buf), Err(ParseError::Malformed));
    }

    #[test]
    fn pause_frame_round_trip() {
        for pause in [true, false] {
            for class in [0u8, 3, 7] {
                let p = PauseFrame { pause, class };
                let mut buf = [0u8; PauseFrame::LEN];
                p.emit(&mut buf);
                assert_eq!(PauseFrame::parse(&buf).unwrap(), p);
            }
        }
    }

    #[test]
    fn pause_frame_rejects_bad_opcode() {
        let mut buf = [0u8; PauseFrame::LEN];
        PauseFrame {
            pause: true,
            class: 1,
        }
        .emit(&mut buf);
        buf[0] = 0;
        assert_eq!(PauseFrame::parse(&buf), Err(ParseError::Malformed));
    }
}
