//! Property-based tests of the LinkGuardian state machines: whatever the
//! loss/duplication/reordering pattern, the ordered receiver delivers a
//! strictly in-order, duplicate-free stream, and the sender's buffer
//! accounting never leaks — in packets *and* in pool slots.

use lg_link::LinkSpeed;
use lg_packet::lg::{LgData, LgPacketType};
use lg_packet::{LgControl, NodeId, Packet, PacketPool, Payload, PktId};
use lg_sim::{Duration, Time};
use linkguardian::seqmap::{abs_of, wire_of};
use linkguardian::{LgConfig, LgReceiver, LgSender, ReceiverAction, SenderAction};
use proptest::prelude::*;

fn data_pkt(pool: &mut PacketPool, abs: u64, kind: LgPacketType) -> PktId {
    let mut p = Packet::raw(NodeId(1), NodeId(2), 1518, Time::ZERO);
    p.uid = abs; // tag with the sequence for order checking
    p.lg_data = Some(LgData {
        seq: wire_of(abs),
        kind,
    });
    pool.insert(p)
}

fn rx_pkt(rx: &mut LgReceiver, id: PktId, t: Time, pool: &mut PacketPool) -> Vec<ReceiverAction> {
    let mut actions = Vec::new();
    rx.on_protected_rx(id, t, pool, &mut actions);
    actions
}

/// Collect delivered uids and release every action's pool reference, so
/// leak checks see only what the state machines themselves retain.
fn drain_delivered(actions: &[ReceiverAction], pool: &mut PacketPool) -> Vec<u64> {
    let mut out = Vec::new();
    for a in actions {
        match a {
            ReceiverAction::Deliver(id) => {
                out.push(pool.get(*id).uid);
                pool.release(*id);
            }
            ReceiverAction::SendReverse { id, .. } => pool.release(*id),
            _ => {}
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Ordered mode: under arbitrary per-packet fates (delivered, lost
    /// then retransmitted, duplicated), the receiver's output is exactly
    /// 1..=n in order — no duplicates, no gaps (no timeouts are triggered
    /// because every loss is recovered here) — and no pool slot leaks.
    #[test]
    fn ordered_receiver_delivers_exact_sequence(
        n in 10u64..200,
        loss_pattern in proptest::collection::vec(0u8..10, 10..200),
        dup_every in 2u64..7,
    ) {
        let cfg = LgConfig::for_speed(LinkSpeed::G100, 1e-3);
        let mut pool = PacketPool::new();
        let mut rx = LgReceiver::new(cfg, NodeId(101), NodeId(100));
        rx.activate();
        let mut out = Vec::new();
        let mut pending_retx: Vec<u64> = Vec::new();
        let mut t = Time::ZERO;
        for abs in 1..=n {
            t += Duration::from_ns(130);
            let lost = loss_pattern
                .get((abs % loss_pattern.len() as u64) as usize)
                .is_some_and(|&v| v == 0);
            if lost {
                pending_retx.push(abs);
                continue; // original never arrives
            }
            let id = data_pkt(&mut pool, abs, LgPacketType::Original);
            let a = rx_pkt(&mut rx, id, t, &mut pool);
            out.extend(drain_delivered(&a, &mut pool));
            // retransmissions of everything reported missing arrive a
            // little later (always successfully), possibly duplicated
            for m in pending_retx.drain(..) {
                t += Duration::from_ns(700);
                let id = data_pkt(&mut pool, m, LgPacketType::Retransmit);
                let a = rx_pkt(&mut rx, id, t, &mut pool);
                out.extend(drain_delivered(&a, &mut pool));
                if m % dup_every == 0 {
                    let id = data_pkt(&mut pool, m, LgPacketType::Retransmit);
                    let a = rx_pkt(&mut rx, id, t, &mut pool);
                    out.extend(drain_delivered(&a, &mut pool));
                }
            }
        }
        // tail: anything still missing is recovered via dummy + retx
        if !pending_retx.is_empty() {
            t += Duration::from_ns(200);
            let mut dummy = Packet::lg_control(NodeId(100), NodeId(101), LgControl::Dummy, t);
            dummy.lg_data = Some(LgData { seq: wire_of(n), kind: LgPacketType::Dummy });
            let dummy = pool.insert(dummy);
            let a = rx_pkt(&mut rx, dummy, t, &mut pool);
            out.extend(drain_delivered(&a, &mut pool));
            for m in pending_retx.drain(..) {
                t += Duration::from_ns(700);
                let id = data_pkt(&mut pool, m, LgPacketType::Retransmit);
                let a = rx_pkt(&mut rx, id, t, &mut pool);
                out.extend(drain_delivered(&a, &mut pool));
            }
        }
        let expect: Vec<u64> = (1..=n).collect();
        prop_assert_eq!(out, expect, "in-order, complete, duplicate-free");
        prop_assert_eq!(rx.stats().timeouts, 0);
        // leak check: every packet fed in was delivered, dropped, or
        // released — nothing left behind in the pool
        prop_assert!(pool.is_drained(), "leaked {} pool slots", pool.live());
    }

    /// The loss notifications the receiver emits cover exactly the lost
    /// packets, each at most once, in chunks of at most 5.
    #[test]
    fn notifications_cover_losses_exactly_once(
        n in 20u64..300,
        lost in proptest::collection::btree_set(2u64..300, 0..40),
    ) {
        let lost: Vec<u64> = lost.into_iter().filter(|&x| x < n).collect();
        let cfg = LgConfig::for_speed(LinkSpeed::G100, 1e-3);
        let mut pool = PacketPool::new();
        let mut rx = LgReceiver::new(cfg, NodeId(101), NodeId(100));
        rx.activate();
        let mut reported = Vec::new();
        let mut t = Time::ZERO;
        for abs in 1..=n {
            if lost.contains(&abs) {
                continue;
            }
            t += Duration::from_ns(130);
            let id = data_pkt(&mut pool, abs, LgPacketType::Original);
            let actions = rx_pkt(&mut rx, id, t, &mut pool);
            for a in &actions {
                if let ReceiverAction::SendReverse { id, .. } = a {
                    if let Payload::Lg(LgControl::LossNotification(nf)) = &pool.get(*id).payload {
                        prop_assert!(nf.count >= 1 && nf.count <= 5);
                        let first = abs_of(nf.first_lost, abs);
                        for k in 0..nf.count as u64 {
                            reported.push(first + k);
                        }
                    }
                }
            }
            drain_delivered(&actions, &mut pool);
        }
        let mut expected: Vec<u64> = lost.clone();
        // trailing losses (after the last delivered packet) are only
        // detectable via dummies, which this test does not send
        let last_delivered = (1..=n).rev().find(|x| !lost.contains(x)).unwrap_or(0);
        expected.retain(|&x| x < last_delivered);
        reported.sort_unstable();
        expected.sort_unstable();
        prop_assert_eq!(reported, expected);
    }

    /// Sender buffer accounting: after every transmitted packet is ACKed,
    /// the Tx buffer is empty — and every pool slot is back on the free
    /// list — whatever interleaving of ACK values.
    #[test]
    fn sender_buffer_drains_to_zero(
        n in 1u64..300,
        ack_step in 1u64..10,
    ) {
        let cfg = LgConfig::for_speed(LinkSpeed::G25, 1e-4);
        let mut pool = PacketPool::new();
        let mut tx = LgSender::new(cfg, NodeId(100), NodeId(101));
        tx.activate(1e-4);
        let mut actions = Vec::new();
        let mut t = Time::ZERO;
        for i in 1..=n {
            t += Duration::from_ns(500);
            let p = pool.insert(Packet::raw(NodeId(1), NodeId(2), 1518, t));
            let p = tx.on_transmit(p, t, &mut pool);
            pool.release(p); // the in-flight copy departs onto the wire
            if i % ack_step == 0 {
                let mut ackp = Packet::lg_control(NodeId(101), NodeId(100), LgControl::ExplicitAck, t);
                ackp.lg_ack = Some(lg_packet::lg::LgAck { latest_rx: wire_of(i), explicit: true });
                let ackp = pool.insert(ackp);
                prop_assert!(tx.on_reverse_rx(ackp, t, &mut pool, &mut actions).is_none());
            }
        }
        // final cumulative ack
        let mut ackp = Packet::lg_control(NodeId(101), NodeId(100), LgControl::ExplicitAck, t);
        ackp.lg_ack = Some(lg_packet::lg::LgAck { latest_rx: wire_of(n), explicit: true });
        let ackp = pool.insert(ackp);
        tx.on_reverse_rx(ackp, t, &mut pool, &mut actions);
        prop_assert!(actions.is_empty());
        prop_assert_eq!(tx.tx_buffer_bytes(), 0);
        prop_assert!(!tx.has_unacked());
        prop_assert!(pool.is_drained(), "leaked {} pool slots", pool.live());
    }

    /// Retransmission requests: the sender emits exactly N copies per
    /// still-buffered lost packet, stamped Retransmit with the right seq —
    /// and all N copies of one packet share a single pool slot.
    #[test]
    fn retx_copies_match_eq2(
        n_sent in 6u64..100,
        first_lost in 1u64..50,
        count in 1u16..=5,
        actual_exp in 3i32..5, // 1e-3 or 1e-4
    ) {
        let actual = 10f64.powi(-actual_exp);
        let first_lost = first_lost.min(n_sent.saturating_sub(count as u64)).max(1);
        let cfg = LgConfig::for_speed(LinkSpeed::G100, actual);
        let n_copies = cfg.n_copies();
        let mut pool = PacketPool::new();
        let mut tx = LgSender::new(cfg, NodeId(100), NodeId(101));
        tx.activate(actual);
        let mut t = Time::ZERO;
        for _ in 0..n_sent {
            t += Duration::from_ns(130);
            let p = pool.insert(Packet::raw(NodeId(1), NodeId(2), 1518, t));
            let p = tx.on_transmit(p, t, &mut pool);
            pool.release(p);
        }
        let notif = pool.insert(Packet::lg_control(
            NodeId(101),
            NodeId(100),
            LgControl::LossNotification(lg_packet::lg::LossNotification {
                first_lost: wire_of(first_lost),
                count,
                latest_rx: wire_of(first_lost + count as u64),
            }),
            t,
        ));
        let mut actions = Vec::new();
        tx.on_reverse_rx(notif, t, &mut pool, &mut actions);
        let emitted: Vec<(PktId, u64, LgPacketType)> = actions
            .iter()
            .filter_map(|a| match a {
                SenderAction::Emit { id, .. } => {
                    let h = pool.get(*id).lg_data.unwrap();
                    Some((*id, abs_of(h.seq, n_sent), h.kind))
                }
                _ => None,
            })
            .collect();
        prop_assert_eq!(emitted.len() as u32, count as u32 * n_copies);
        for &(id, seq, kind) in &emitted {
            prop_assert_eq!(kind, LgPacketType::Retransmit);
            prop_assert!((first_lost..first_lost + count as u64).contains(&seq));
            // every emitted copy of a given packet shares one buffer
            prop_assert_eq!(pool.refcount(id) as u64,
                emitted.iter().filter(|&&(other, _, _)| other == id).count() as u64);
        }
    }
}
