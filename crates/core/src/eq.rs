//! The retransmission-count equations of §3.4.
//!
//! To survive loss of retransmitted copies, the sender retransmits `N`
//! copies per lost packet. With the original, `N + 1` copies are sent, so
//! the effective loss rate is `actual^(N+1)` (Eq. 1), giving
//! `N ≥ log(target)/log(actual) − 1` (Eq. 2).

/// Number of retransmitted copies (Eq. 2): the smallest integer `N` such
/// that `actual^(N+1) ≤ target`.
pub fn retx_copies(actual_loss_rate: f64, target_loss_rate: f64) -> u32 {
    assert!(
        actual_loss_rate > 0.0 && actual_loss_rate < 1.0,
        "actual loss rate must be in (0,1)"
    );
    assert!(
        target_loss_rate > 0.0 && target_loss_rate < 1.0,
        "target loss rate must be in (0,1)"
    );
    if target_loss_rate >= actual_loss_rate {
        // one retransmission still helps tail-loss recovery; never go below 1
        return 1;
    }
    // A tiny epsilon absorbs floating-point noise in the log ratio so that
    // exact integer ratios (e.g. 1e-8 / 1e-4 → N = 1) don't round up.
    let n = (target_loss_rate.ln() / actual_loss_rate.ln() - 1.0 - 1e-9).ceil();
    (n as u32).max(1)
}

/// Expected effective loss rate after retransmitting `n` copies (Eq. 1),
/// assuming independent per-copy loss.
pub fn effective_loss_rate(actual_loss_rate: f64, n: u32) -> f64 {
    actual_loss_rate.powi(n as i32 + 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_examples() {
        // §3.4: target 1e-8, actual 1e-4 → N = 1
        assert_eq!(retx_copies(1e-4, 1e-8), 1);
        // §4.1: losses 1e-5, 1e-4, 1e-3 → copies 1, 1, 2
        assert_eq!(retx_copies(1e-5, 1e-8), 1);
        assert_eq!(retx_copies(1e-3, 1e-8), 2);
    }

    #[test]
    fn expected_effective_rates() {
        // §4.1: theoretically 1e-10, 1e-8, 1e-9 for the three loss rates
        assert!((effective_loss_rate(1e-5, 1) - 1e-10).abs() < 1e-22);
        assert!((effective_loss_rate(1e-4, 1) - 1e-8).abs() < 1e-20);
        assert!((effective_loss_rate(1e-3, 2) - 1e-9).abs() < 1e-21);
    }

    #[test]
    fn copies_guarantee_target() {
        for &actual in &[1e-5, 1e-4, 1e-3, 1e-2, 0.05] {
            for &target in &[1e-6, 1e-8, 1e-10] {
                let n = retx_copies(actual, target);
                assert!(
                    effective_loss_rate(actual, n) <= target * (1.0 + 1e-9),
                    "actual={actual:e} target={target:e} n={n}"
                );
            }
        }
    }

    #[test]
    fn copies_are_minimal() {
        for &actual in &[1e-4, 1e-3, 1e-2] {
            let target = 1e-8;
            let n = retx_copies(actual, target);
            if n > 1 {
                assert!(
                    effective_loss_rate(actual, n - 1) > target,
                    "N-1 would already meet the target for actual={actual:e}"
                );
            }
        }
    }

    #[test]
    fn floor_of_one_copy() {
        // even a very healthy link retransmits once when asked
        assert_eq!(retx_copies(1e-9, 1e-8), 1);
    }

    #[test]
    #[should_panic]
    fn zero_rate_rejected() {
        retx_copies(0.0, 1e-8);
    }
}
