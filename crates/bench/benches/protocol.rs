//! Benchmarks of the LinkGuardian protocol hot path and end-to-end
//! simulation throughput.

use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use lg_link::{LinkSpeed, LossModel};
use lg_packet::{NodeId, Packet, PacketPool};
use lg_sim::{Duration, Time};
use lg_testbed::world::{World, WorldConfig};
use linkguardian::{LgConfig, LgReceiver, LgSender, ReceiverAction, SenderAction};

fn bench_sender_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("lg_sender");
    g.throughput(Throughput::Elements(1));
    g.bench_function("stamp_and_buffer", |b| {
        let cfg = LgConfig::for_speed(LinkSpeed::G100, 1e-3);
        let mut s = LgSender::new(cfg, NodeId(100), NodeId(101));
        s.activate(1e-3);
        let mut pool = PacketPool::new();
        let mut actions: Vec<SenderAction> = Vec::new();
        let mut t = 0u64;
        b.iter(|| {
            t += 123;
            let id = pool.insert(Packet::raw(NodeId(0), NodeId(1), 1518, Time::from_ns(t)));
            let id = s.on_transmit(id, Time::from_ns(t), &mut pool);
            // the wire copy leaves; the Tx-buffer mirror keeps the slot
            pool.release(id);
            // immediately ack so the buffer stays small
            let mut ack = Packet::lg_control(
                NodeId(101),
                NodeId(100),
                lg_packet::LgControl::ExplicitAck,
                Time::from_ns(t),
            );
            ack.lg_ack = Some(lg_packet::lg::LgAck {
                latest_rx: linkguardian::seqmap::wire_of(s.last_sent()),
                explicit: true,
            });
            let ack_id = pool.insert(ack);
            if let Some(rem) = s.on_reverse_rx(ack_id, Time::from_ns(t), &mut pool, &mut actions) {
                pool.release(rem);
            }
            for a in actions.drain(..) {
                if let SenderAction::Emit { id, .. } = a {
                    pool.release(id);
                }
            }
            black_box(pool.live())
        })
    });
    g.finish();
}

fn bench_receiver_path(c: &mut Criterion) {
    let mut g = c.benchmark_group("lg_receiver");
    g.throughput(Throughput::Elements(1));
    g.bench_function("in_order_accept", |b| {
        let cfg = LgConfig::for_speed(LinkSpeed::G100, 1e-3);
        let mut r = LgReceiver::new(cfg, NodeId(101), NodeId(100));
        r.activate();
        let mut pool = PacketPool::new();
        let mut actions: Vec<ReceiverAction> = Vec::new();
        let mut abs = 0u64;
        b.iter(|| {
            abs += 1;
            let id = pool.insert(Packet::raw(NodeId(0), NodeId(1), 1518, Time::from_ns(abs)));
            pool.get_mut(id).lg_data = Some(lg_packet::lg::LgData {
                seq: linkguardian::seqmap::wire_of(abs),
                kind: lg_packet::lg::LgPacketType::Original,
            });
            r.on_protected_rx(id, Time::from_ns(abs * 123), &mut pool, &mut actions);
            for a in actions.drain(..) {
                match a {
                    ReceiverAction::Deliver(id) | ReceiverAction::SendReverse { id, .. } => {
                        pool.release(id)
                    }
                    ReceiverAction::ArmTimeout { .. } | ReceiverAction::ArmBpTimer { .. } => {}
                }
            }
            black_box(pool.live())
        })
    });
    g.finish();
}

fn bench_world_stress(c: &mut Criterion) {
    let mut g = c.benchmark_group("world");
    g.sample_size(10);
    // one millisecond of 100G line-rate stress with 1e-3 corruption
    g.throughput(Throughput::Elements(8_127)); // ≈ packets per simulated ms
    g.bench_function("stress_1ms_100g_1e-3", |b| {
        b.iter(|| {
            let cfg = WorldConfig::new(LinkSpeed::G100, LossModel::Iid { rate: 1e-3 });
            let mut w = World::new(cfg);
            w.enable_stress(1518);
            w.run_until(Time::ZERO + Duration::from_ms(1));
            black_box(w.stress_delivered())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_sender_path,
    bench_receiver_path,
    bench_world_stress
);
criterion_main!(benches);
