//! Query surface over a guardian journal — the library half of
//! `guardctl`.
//!
//! A journal file is JSONL: `guard_event` records in `seq` order,
//! optionally preceded by a session `meta` line and/or interleaved with
//! a `guard_snapshot`. Parsing skips record types it does not own (so
//! `guardctl` can be pointed at a whole session dump), but a malformed
//! `guard_event` is an error with its line number.
//!
//! The reports answer the operator questions the tentpole names:
//! `status` (who is protected right now, and on whose budget),
//! `history <link>` (every decision about one link), `why <link>` (the
//! postmortem for the latest decision: the health transitions that
//! caused it and the candidates it beat), and `timeline` (every
//! decision in order).

use crate::{health_from_name, GuardAction, GuardInput, LinkHealth};
use lg_obs::json::{parse, JsonValue};

/// One decoded `guard_event` record.
#[derive(Debug, Clone, PartialEq)]
pub struct JournalEvent {
    /// Journal sequence number.
    pub seq: u64,
    /// Sim time of the decision.
    pub t_ps: u64,
    /// The link decided on.
    pub link: u32,
    /// What was decided.
    pub action: GuardAction,
    /// The link's health state at decision time.
    pub state: LinkHealth,
    /// The link's windowed loss rate at decision time.
    pub rate: f64,
    /// Budget ceiling in force.
    pub budget: u64,
    /// Budget slots in use after this decision.
    pub budget_used: u64,
    /// The health transitions that led here (most recent last).
    pub cause: Vec<GuardInput>,
    /// Candidates this decision outranked (for `enable`) or lost to
    /// (for `defer`), as `(link, rate)`.
    pub beat: Vec<(u32, f64)>,
}

/// A decoded journal document.
#[derive(Debug, Default)]
pub struct Journal {
    /// Run label from the first `guard_event` (empty if none).
    pub run: String,
    /// Events in file (= `seq`) order.
    pub events: Vec<JournalEvent>,
    /// Number of `guard_snapshot` records seen while parsing.
    pub snapshots: usize,
}

/// Parse a journal document. Lines whose `type` is not `guard_event` or
/// `guard_snapshot` are skipped (session dumps carry a `meta` line);
/// malformed guard records fail with their line number.
pub fn parse_journal(text: &str) -> Result<Journal, String> {
    let mut j = Journal::default();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let n = i + 1;
        let v = parse(line).map_err(|e| format!("line {n}: not valid JSON: {e}"))?;
        match v.get("type").and_then(|t| t.as_str()) {
            Some("guard_event") => {
                let ev = decode_event(&v).map_err(|e| format!("line {n}: {e}"))?;
                if j.events.is_empty() {
                    j.run = str_field(&v, "run")?.to_string();
                }
                j.events.push(ev);
            }
            Some("guard_snapshot") => j.snapshots += 1,
            _ => {}
        }
    }
    Ok(j)
}

fn decode_event(v: &JsonValue) -> Result<JournalEvent, String> {
    let action_name = str_field(v, "action")?;
    let action =
        GuardAction::parse(action_name).ok_or_else(|| format!("unknown action {action_name:?}"))?;
    let mut cause = Vec::new();
    if let Some(JsonValue::Arr(items)) = v.get("cause") {
        for item in items {
            cause.push(GuardInput::from_json(item)?);
        }
    }
    let mut beat = Vec::new();
    if let Some(JsonValue::Arr(items)) = v.get("beat") {
        for item in items {
            beat.push((num(item, "link")? as u32, num(item, "rate")?));
        }
    }
    Ok(JournalEvent {
        seq: num(v, "seq")? as u64,
        t_ps: num(v, "t_ps")? as u64,
        link: num(v, "link")? as u32,
        action,
        state: health_from_name(str_field(v, "state")?)?,
        rate: num(v, "rate")?,
        budget: num(v, "budget")? as u64,
        budget_used: num(v, "budget_used")? as u64,
        cause,
        beat,
    })
}

fn num(v: &JsonValue, key: &str) -> Result<f64, String> {
    v.get(key)
        .and_then(|f| f.as_num())
        .ok_or_else(|| format!("missing numeric field {key:?}"))
}

fn str_field<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .and_then(|f| f.as_str())
        .ok_or_else(|| format!("missing string field {key:?}"))
}

impl Journal {
    /// Fold the journal to the current protected set: for each
    /// protected link, the `enable` event that put it there.
    pub fn protected(&self) -> Vec<&JournalEvent> {
        let mut active: Vec<&JournalEvent> = Vec::new();
        for ev in &self.events {
            match ev.action {
                GuardAction::Enable => {
                    active.retain(|e| e.link != ev.link);
                    active.push(ev);
                }
                GuardAction::Retire => active.retain(|e| e.link != ev.link),
                GuardAction::Defer => {}
            }
        }
        active.sort_by_key(|e| e.link);
        active
    }

    /// Every decision about one link, in order.
    pub fn history(&self, link: u32) -> Vec<&JournalEvent> {
        self.events.iter().filter(|e| e.link == link).collect()
    }

    /// The most recent decision about one link (the `why` postmortem).
    pub fn latest(&self, link: u32) -> Option<&JournalEvent> {
        self.events.iter().rev().find(|e| e.link == link)
    }
}

fn fmt_t(t_ps: u64) -> String {
    format!("t={:.3}ms", t_ps as f64 / 1e9)
}

fn fmt_line(ev: &JournalEvent) -> String {
    format!(
        "#{:<5} {:>14}  link {:<5} {:<7} state={} rate={:.3e} budget {}/{}",
        ev.seq,
        fmt_t(ev.t_ps),
        ev.link,
        ev.action.name(),
        ev.state.name(),
        ev.rate,
        ev.budget_used,
        fmt_budget(ev.budget),
    )
}

fn fmt_budget(b: u64) -> String {
    if b == u64::from(u32::MAX) {
        "inf".into()
    } else {
        b.to_string()
    }
}

/// `guardctl status`: the current protected set and budget pressure.
pub fn render_status(j: &Journal) -> String {
    let mut out = String::new();
    let active = j.protected();
    let (used, budget) = j
        .events
        .last()
        .map_or((0, 0), |e| (e.budget_used, e.budget));
    out.push_str(&format!(
        "run {:?}: {} decisions, {} protected, budget {}/{}\n",
        j.run,
        j.events.len(),
        active.len(),
        used,
        fmt_budget(budget),
    ));
    for ev in active {
        out.push_str(&format!(
            "  link {:<5} protected since seq {} ({}) rate={:.3e}\n",
            ev.link,
            ev.seq,
            fmt_t(ev.t_ps),
            ev.rate
        ));
    }
    let deferred: Vec<u32> = {
        let mut seen = Vec::new();
        for ev in j.events.iter().rev() {
            if !seen.iter().any(|&(l, _)| l == ev.link) {
                seen.push((ev.link, ev.action));
            }
        }
        seen.sort_by_key(|&(l, _)| l);
        seen.iter()
            .filter(|&&(_, a)| a == GuardAction::Defer)
            .map(|&(l, _)| l)
            .collect()
    };
    if !deferred.is_empty() {
        out.push_str(&format!(
            "  waiting on budget: {}\n",
            deferred
                .iter()
                .map(|l| l.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
    }
    out
}

/// `guardctl timeline`: every decision, in order.
pub fn render_timeline(j: &Journal) -> String {
    let mut out = String::new();
    for ev in &j.events {
        out.push_str(&fmt_line(ev));
        out.push('\n');
    }
    out
}

/// `guardctl history <link>`: every decision about one link.
pub fn render_history(j: &Journal, link: u32) -> String {
    let evs = j.history(link);
    if evs.is_empty() {
        return format!("link {link}: no decisions in journal\n");
    }
    let mut out = String::new();
    for ev in evs {
        out.push_str(&fmt_line(ev));
        out.push('\n');
    }
    out
}

/// `guardctl why <link>`: postmortem of the latest decision — the full
/// cause chain (health transitions) and the candidate scores it was
/// ranked against.
pub fn render_why(j: &Journal, link: u32) -> String {
    let Some(ev) = j.latest(link) else {
        return format!("link {link}: no decisions in journal\n");
    };
    let mut out = String::new();
    out.push_str(&fmt_line(ev));
    out.push('\n');
    out.push_str("  cause chain:\n");
    if ev.cause.is_empty() {
        out.push_str("    (none recorded)\n");
    }
    for c in &ev.cause {
        out.push_str(&format!(
            "    {} window {:<6} {} -> {} rate={:.3e}\n",
            fmt_t(c.t_ps),
            c.window_id,
            c.from.name(),
            c.to.name(),
            c.rate
        ));
    }
    match ev.action {
        GuardAction::Enable => {
            out.push_str(&format!("  outranked {} candidate(s):\n", ev.beat.len()));
        }
        GuardAction::Defer => {
            out.push_str(&format!(
                "  lost the budget to {} candidate(s):\n",
                ev.beat.len()
            ));
        }
        GuardAction::Retire => {
            out.push_str("  retired: observed health cleared the hysteresis band\n");
        }
    }
    for &(l, r) in &ev.beat {
        out.push_str(&format!("    link {l:<5} rate={r:.3e}\n"));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GuardConfig, GuardManager};

    fn sample_journal() -> Journal {
        const H: LinkHealth = LinkHealth::Healthy;
        const C: LinkHealth = LinkHealth::Corrupting;
        let cfg = GuardConfig {
            budget: 1,
            hold_down_windows: 0,
            ..GuardConfig::default()
        };
        let mut m = GuardManager::new("q", cfg);
        let tr = |t, w, link, from, to, rate| GuardInput {
            t_ps: t,
            window_id: w,
            link,
            from,
            to,
            rate,
        };
        m.ingest(tr(10, 1, 3, H, C, 1e-4));
        m.ingest(tr(20, 1, 7, H, C, 1e-3)); // defers behind 3
        m.ingest(tr(30, 9, 3, C, H, 1e-9)); // retires
        m.ingest(tr(40, 2, 7, C, C, 9e-4)); // promoted
        let text = m.take_journal().join("\n");
        parse_journal(&text).expect("round-trips")
    }

    #[test]
    fn journal_round_trips_and_folds_to_status() {
        let j = sample_journal();
        assert_eq!(j.run, "q");
        assert_eq!(j.events.len(), 4);
        let active = j.protected();
        assert_eq!(active.len(), 1);
        assert_eq!(active[0].link, 7);
        assert_eq!(active[0].action, GuardAction::Enable);
        let status = render_status(&j);
        assert!(status.contains("1 protected"), "{status}");
        assert!(status.contains("link 7"), "{status}");
    }

    #[test]
    fn why_reconstructs_cause_chain_and_beaten_candidates() {
        let j = sample_journal();
        // The defer decision for link 7 recorded who beat it.
        let defer = &j.events[1];
        assert_eq!(defer.action, GuardAction::Defer);
        assert_eq!(defer.beat, vec![(3, 1e-4)]);
        assert_eq!(defer.cause.len(), 1);
        assert_eq!(defer.cause[0].to, LinkHealth::Corrupting);
        let why = render_why(&j, 7);
        assert!(why.contains("cause chain"), "{why}");
        assert!(
            why.contains("healthy -> corrupting") || why.contains("corrupting -> corrupting"),
            "{why}"
        );
        let hist = render_history(&j, 3);
        assert!(hist.contains("enable"), "{hist}");
        assert!(hist.contains("retire"), "{hist}");
        assert!(render_history(&j, 99).contains("no decisions"));
    }

    #[test]
    fn non_guard_lines_are_skipped() {
        let doc = "{\"type\":\"meta\",\"schema\":3,\"bin\":\"x\"}\n\n{\"type\":\"timeseries\",\"t_ps\":1}\n";
        let j = parse_journal(doc).expect("skips foreign records");
        assert!(j.events.is_empty());
        let err = parse_journal("{\"type\":\"guard_event\"}\n").unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }
}
